"""Entropy-based privacy metrics.

Perfect obfuscation (the goal of adaptive diffusion, Section V-B of the
paper) means the attacker's posterior over originators is uniform over all
``n`` nodes: probability ``1/n`` each, i.e. maximal entropy.  These helpers
quantify how far a posterior is from that ideal.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable


def _validate(posterior: Dict[Hashable, float]) -> None:
    if not posterior:
        raise ValueError("the posterior distribution is empty")
    if any(p < -1e-12 for p in posterior.values()):
        raise ValueError("probabilities must be non-negative")
    total = sum(posterior.values())
    if total <= 0:
        raise ValueError("the posterior distribution sums to zero")


def shannon_entropy(posterior: Dict[Hashable, float]) -> float:
    """Shannon entropy (in bits) of a (possibly unnormalised) posterior."""
    _validate(posterior)
    total = sum(posterior.values())
    entropy = 0.0
    for probability in posterior.values():
        p = probability / total
        if p > 0:
            entropy -= p * math.log2(p)
    return entropy


def normalized_entropy(posterior: Dict[Hashable, float]) -> float:
    """Entropy divided by the maximum achievable entropy (``log2 n``).

    1.0 means perfect obfuscation, 0.0 means the attacker is certain.
    A single-candidate posterior has, by convention, normalised entropy 0.
    """
    _validate(posterior)
    if len(posterior) == 1:
        return 0.0
    return shannon_entropy(posterior) / math.log2(len(posterior))


def min_entropy(posterior: Dict[Hashable, float]) -> float:
    """Min-entropy (in bits): ``-log2`` of the attacker's best-guess odds.

    The most conservative anonymity measure — it is determined entirely by
    the single most suspect candidate, so one concentrated spike destroys
    it even when the Shannon entropy stays high.
    """
    _validate(posterior)
    return -math.log2(top_probability(posterior))


def top_probability(posterior: Dict[Hashable, float]) -> float:
    """The attacker's success probability with a single best guess."""
    _validate(posterior)
    total = sum(posterior.values())
    return max(posterior.values()) / total


def obfuscation_gap(posterior: Dict[Hashable, float], population: int) -> float:
    """Distance of the best-guess probability from perfect obfuscation.

    Perfect obfuscation over a population of ``n`` nodes gives the attacker a
    ``1/n`` chance; the gap is ``top_probability - 1/n`` (>= 0 up to floating
    point noise).
    """
    if population < 1:
        raise ValueError("population must be positive")
    return top_probability(posterior) - 1.0 / population
