"""Detection statistics for deanonymisation attacks.

An attack is evaluated over many broadcasts: for every broadcast the
adversary either names a suspected originator or abstains.  Precision,
recall and overall detection probability follow the definitions used in the
Dandelion and deanonymisation literature the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DetectionStats:
    """Aggregated outcome of a deanonymisation attack.

    Attributes:
        total: number of broadcasts evaluated.
        guesses: number of broadcasts for which the attacker named a suspect.
        correct: number of correct suspicions.
    """

    total: int
    guesses: int
    correct: int

    @property
    def precision(self) -> float:
        """Fraction of guesses that were correct (1.0 when never guessing)."""
        if self.guesses == 0:
            return 1.0 if self.correct == 0 else 0.0
        return self.correct / self.guesses

    @property
    def recall(self) -> float:
        """Fraction of all broadcasts whose originator was identified."""
        if self.total == 0:
            return 0.0
        return self.correct / self.total

    @property
    def detection_probability(self) -> float:
        """Synonym for recall, the paper's "probability to detect the true origin"."""
        return self.recall

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def evaluate_attack(
    outcomes: Sequence[Tuple[Hashable, Optional[Hashable]]],
) -> DetectionStats:
    """Aggregate ``(true_source, guessed_source_or_None)`` pairs.

    Args:
        outcomes: one entry per broadcast; ``None`` as the guess means the
            attacker abstained for that broadcast.
    """
    total = len(outcomes)
    guesses = sum(1 for _, guess in outcomes if guess is not None)
    correct = sum(1 for truth, guess in outcomes if guess is not None and guess == truth)
    return DetectionStats(total=total, guesses=guesses, correct=correct)
