"""The per-broadcast privacy-metrics engine.

Every attacked broadcast yields one posterior surface (see
:mod:`repro.privacy.posterior`); this module turns each surface into the
information-theoretic metrics the paper's evaluation is phrased in —
Shannon entropy, min-entropy, anonymity-set size, the true sender's
expected rank and top-k success — and streams them into per-experiment
means without ever materialising per-node candidate lists beyond the
posterior the estimator already built.

Conventions, chosen so every metric is defined for every broadcast:

* An **empty posterior** (the adversary saw nothing, or abstained) is the
  blind attacker: entropy and min-entropy are ``log2(population)``, the
  anonymity set is the whole population, the expected rank is the middle
  of a uniformly shuffled population, and every top-k attempt fails (an
  abstaining attacker names nobody).
* **Expected rank** averages over ties: candidates scoring equal to the
  true sender contribute the mean of the tie block's rank range, and a
  true sender the posterior does not mention at all sits uniformly among
  the unranked remainder of the population.  No ``repr`` tie-break leaks
  into this metric.
* **Top-k success** is deterministic: the true sender must hold one of the
  first ``k`` places of the canonical order (score, then ``repr``) with
  positive probability.  It is monotone in ``k`` by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.privacy.anonymity import DEFAULT_THRESHOLD, anonymity_set_size
from repro.privacy.posterior import Scores, canonical_order, normalize

#: The default top-k ladder reported by experiments.
DEFAULT_TOP_K = (1, 3, 5)


@dataclass(frozen=True)
class PrivacyConfig:
    """What the privacy-metrics engine computes for one experiment.

    Attributes:
        top_k: the ``k`` values of the top-k success metrics.
        intersection: whether to run the multi-round intersection attack
            (see :mod:`repro.privacy.intersection`) across broadcasts that
            share a true sender.
    """

    top_k: Tuple[int, ...] = DEFAULT_TOP_K
    intersection: bool = True

    def __post_init__(self) -> None:
        if not self.top_k:
            raise ValueError("top_k needs at least one entry")
        if any(k < 1 for k in self.top_k):
            raise ValueError("every top-k cutoff must be at least 1")
        if list(self.top_k) != sorted(set(self.top_k)):
            raise ValueError("top_k must be strictly increasing")


@dataclass(frozen=True)
class BroadcastPrivacy:
    """The privacy metrics of one attacked broadcast.

    Attributes:
        entropy: Shannon entropy (bits) of the attacker's posterior.
        min_entropy: ``-log2`` of the attacker's best single-guess odds.
        anonymity_set: candidates the attacker cannot rule out.
        normalized_anonymity: ``anonymity_set / population``.
        expected_rank: tie-averaged rank of the true sender (1 = prime
            suspect, ``(population+1)/2`` = blind attacker).
        top_hits: for each configured ``k``, whether the true sender sits
            in the attacker's top-k.
        candidates: number of positively scored candidates.
    """

    entropy: float
    min_entropy: float
    anonymity_set: int
    normalized_anonymity: float
    expected_rank: float
    top_hits: Tuple[bool, ...]
    candidates: int


def broadcast_privacy(
    scores: Scores,
    true_source: Hashable,
    population: int,
    top_k: Tuple[int, ...] = DEFAULT_TOP_K,
) -> BroadcastPrivacy:
    """Metrics of one posterior surface against the ground-truth sender.

    Args:
        scores: the attacker's (possibly unnormalised) posterior; empty
            means the attacker learned nothing.
        true_source: ground-truth originator of the broadcast.
        population: number of nodes in the overlay.
        top_k: the top-k success cutoffs.

    Raises:
        ValueError: for a non-positive population or negative scores.
    """
    if population < 1:
        raise ValueError("population must be positive")
    posterior = {
        node: p for node, p in normalize(scores).items() if p > 0
    }
    if not posterior:
        blind_entropy = math.log2(population)
        return BroadcastPrivacy(
            entropy=blind_entropy,
            min_entropy=blind_entropy,
            anonymity_set=population,
            normalized_anonymity=1.0,
            expected_rank=(population + 1) / 2,
            top_hits=tuple(False for _ in top_k),
            candidates=0,
        )

    entropy = -sum(p * math.log2(p) for p in posterior.values())
    top_p = max(posterior.values())
    # Candidates whose weight survives the standard ruled-out threshold
    # (vanishing tails of an exponential decay do not enlarge the set).
    anonymity_set = anonymity_set_size(posterior, DEFAULT_THRESHOLD)
    candidates = len(posterior)

    truth_p = posterior.get(true_source)
    if truth_p is None:
        # The attacker ruled the true sender out (or never saw it): it sits
        # uniformly among the population's unranked remainder.
        expected_rank = candidates + (population - candidates + 1) / 2
        top_hits = tuple(False for _ in top_k)
    else:
        higher = sum(1 for p in posterior.values() if p > truth_p)
        ties = sum(1 for p in posterior.values() if p == truth_p)
        expected_rank = higher + (ties + 1) / 2
        position = next(
            index
            for index, (node, _) in enumerate(canonical_order(posterior))
            if node == true_source
        )
        top_hits = tuple(position < k for k in top_k)

    return BroadcastPrivacy(
        entropy=entropy,
        min_entropy=-math.log2(top_p),
        anonymity_set=anonymity_set,
        normalized_anonymity=anonymity_set / population,
        expected_rank=expected_rank,
        top_hits=top_hits,
        candidates=candidates,
    )


@dataclass(frozen=True)
class IntersectionReport:
    """Aggregated outcome of the multi-round intersection attack.

    One combined posterior exists per distinct true sender; all metrics
    below are means over those senders (see
    :class:`~repro.privacy.intersection.IntersectionAttack`).  Senders the
    attack stayed blind on contribute the blind-attacker metrics.

    Attributes:
        senders: distinct senders the attack accumulated rounds for.
        rounds_mean: mean informative rounds per sender.
        entropy: mean Shannon entropy of the combined posteriors.
        min_entropy: mean min-entropy of the combined posteriors.
        expected_rank: mean tie-averaged rank of the true senders.
        top1_success: fraction of senders the combined posterior names as
            prime suspect.
        entropy_reduction: single-round mean entropy minus ``entropy`` —
            how many bits the linking attack strips off per sender.
    """

    senders: int
    rounds_mean: float
    entropy: float
    min_entropy: float
    expected_rank: float
    top1_success: float
    entropy_reduction: float


@dataclass(frozen=True)
class PrivacyReport:
    """Per-experiment means of the broadcast privacy metrics.

    Attributes:
        broadcasts: number of attacked broadcasts aggregated.
        population: overlay size the metrics are normalised against.
        entropy: mean Shannon entropy (bits).
        min_entropy: mean min-entropy (bits).
        anonymity_set: mean anonymity-set size.
        normalized_anonymity: mean anonymity set as a population fraction.
        expected_rank: mean expected rank of the true sender.
        top_k: the configured top-k cutoffs.
        top_k_success: per-cutoff fraction of broadcasts whose true sender
            was inside the attacker's top-k.
        intersection: the multi-round linking attack's outcome, when run.
    """

    broadcasts: int
    population: int
    entropy: float
    min_entropy: float
    anonymity_set: float
    normalized_anonymity: float
    expected_rank: float
    top_k: Tuple[int, ...]
    top_k_success: Tuple[float, ...]
    intersection: Optional[IntersectionReport] = None

    def to_metrics(self) -> Dict[str, float]:
        """Flatten into the float metrics dictionary runs/digests carry."""
        metrics = {
            "privacy_entropy": self.entropy,
            "privacy_min_entropy": self.min_entropy,
            "privacy_anonymity_set": self.anonymity_set,
            "privacy_norm_anonymity": self.normalized_anonymity,
            "privacy_expected_rank": self.expected_rank,
        }
        for k, success in zip(self.top_k, self.top_k_success):
            metrics[f"privacy_top{k}"] = success
        if self.intersection is not None:
            metrics["privacy_intersection_entropy"] = self.intersection.entropy
            metrics["privacy_intersection_top1"] = self.intersection.top1_success
            metrics["privacy_entropy_reduction"] = (
                self.intersection.entropy_reduction
            )
        return metrics


class PrivacyAccumulator:
    """Streams per-broadcast posteriors into one :class:`PrivacyReport`.

    The accumulator holds running sums only — O(len(top_k)) state, no
    per-broadcast or per-node lists — so privacy measurement adds nothing
    to the experiment loop's memory profile regardless of workload size.
    """

    def __init__(
        self, population: int, top_k: Tuple[int, ...] = DEFAULT_TOP_K
    ) -> None:
        if population < 1:
            raise ValueError("population must be positive")
        self.population = population
        self.top_k = tuple(top_k)
        self._count = 0
        self._entropy = 0.0
        self._min_entropy = 0.0
        self._anonymity_set = 0.0
        self._normalized = 0.0
        self._expected_rank = 0.0
        self._top_hits = [0] * len(self.top_k)

    def add(self, scores: Scores, true_source: Hashable) -> BroadcastPrivacy:
        """Fold one broadcast's posterior into the running means."""
        sample = broadcast_privacy(
            scores, true_source, self.population, self.top_k
        )
        self._count += 1
        self._entropy += sample.entropy
        self._min_entropy += sample.min_entropy
        self._anonymity_set += sample.anonymity_set
        self._normalized += sample.normalized_anonymity
        self._expected_rank += sample.expected_rank
        for index, hit in enumerate(sample.top_hits):
            self._top_hits[index] += int(hit)
        return sample

    @property
    def count(self) -> int:
        """Broadcasts folded in so far."""
        return self._count

    @property
    def mean_entropy(self) -> float:
        """Running mean Shannon entropy (0.0 before any broadcast)."""
        return self._entropy / self._count if self._count else 0.0

    def report(
        self, intersection: Optional[IntersectionReport] = None
    ) -> PrivacyReport:
        """The aggregated report (raises before any broadcast was added)."""
        if self._count == 0:
            raise ValueError("no broadcasts were accumulated")
        n = self._count
        return PrivacyReport(
            broadcasts=n,
            population=self.population,
            entropy=self._entropy / n,
            min_entropy=self._min_entropy / n,
            anonymity_set=self._anonymity_set / n,
            normalized_anonymity=self._normalized / n,
            expected_rank=self._expected_rank / n,
            top_k=self.top_k,
            top_k_success=tuple(hits / n for hits in self._top_hits),
            intersection=intersection,
        )


def summarize_intersection(
    outcomes: List[Tuple[Hashable, int, Scores]],
    population: int,
    single_round_entropy: float,
) -> Optional[IntersectionReport]:
    """Aggregate per-sender combined posteriors into one report.

    Args:
        outcomes: ``(true_sender, informative_rounds, combined_posterior)``
            per distinct sender.  A sender whose every round was blind
            carries an empty posterior and contributes the blind-attacker
            metrics — the report always covers *all* senders, so repeated
            runs of one scenario always expose the same metric keys.
        population: overlay size.
        single_round_entropy: the mean per-broadcast entropy the combined
            posteriors are compared against.

    Returns:
        The report, or ``None`` for an empty outcome list.
    """
    if not outcomes:
        return None
    entropy_sum = 0.0
    min_entropy_sum = 0.0
    rank_sum = 0.0
    top1 = 0
    rounds_sum = 0
    for sender, rounds, scores in outcomes:
        sample = broadcast_privacy(scores, sender, population, (1,))
        entropy_sum += sample.entropy
        min_entropy_sum += sample.min_entropy
        rank_sum += sample.expected_rank
        top1 += int(sample.top_hits[0])
        rounds_sum += rounds
    n = len(outcomes)
    return IntersectionReport(
        senders=n,
        rounds_mean=rounds_sum / n,
        entropy=entropy_sum / n,
        min_entropy=min_entropy_sum / n,
        expected_rank=rank_sum / n,
        top1_success=top1 / n,
        entropy_reduction=single_round_entropy - entropy_sum / n,
    )
