"""Anonymity-set metrics (k-anonymity).

An attacker's knowledge about the originator of a message is represented as
a posterior probability distribution over candidate nodes.  The anonymity
set is the set of candidates the attacker cannot rule out; the paper's
Phase-1 guarantee is that this set contains all honest members of the DC-net
group (``ℓ``-anonymity for ``ℓ ≤ k`` honest members).
"""

from __future__ import annotations

from typing import Dict, Hashable

#: Posteriors below this weight are treated as "ruled out" by the attacker.
DEFAULT_THRESHOLD = 1e-9


def anonymity_set_size(
    posterior: Dict[Hashable, float], threshold: float = DEFAULT_THRESHOLD
) -> int:
    """Number of candidates the attacker cannot rule out.

    Args:
        posterior: attacker's probability per candidate originator.
        threshold: probabilities at or below this value count as ruled out.
    """
    if not posterior:
        raise ValueError("the posterior distribution is empty")
    return sum(1 for probability in posterior.values() if probability > threshold)


def k_anonymity_level(
    posterior: Dict[Hashable, float], threshold: float = DEFAULT_THRESHOLD
) -> int:
    """The ``k`` such that the distribution is k-anonymous but not (k+1).

    Following the standard definition, a distribution is k-anonymous when the
    attacker's best guess is right with probability at most ``1/k``; the
    level reported is ``floor(1 / max_probability)`` (and never larger than
    the anonymity-set size).
    """
    if not posterior:
        raise ValueError("the posterior distribution is empty")
    top = max(posterior.values())
    if top <= threshold:
        return len(posterior)
    return min(int(1.0 / top + 1e-12), anonymity_set_size(posterior, threshold))


def is_k_anonymous(
    posterior: Dict[Hashable, float],
    k: int,
    threshold: float = DEFAULT_THRESHOLD,
) -> bool:
    """Whether the attacker's best guess succeeds with probability <= 1/k."""
    if k < 1:
        raise ValueError("k must be at least 1")
    return k_anonymity_level(posterior, threshold) >= k
