"""The posterior protocol: how estimators expose attacker beliefs.

The detection pipeline historically reduced every adversary to a single
point guess per broadcast.  The paper's privacy claims, however, are
statements about the attacker's *distribution* over candidate originators
(ℓ-anonymity within a DC-net group, entropy-based obfuscation), so every
estimator now also exposes

``rank(payload_id) -> {node: score}``

— a non-negative score per candidate originator, higher meaning more
suspect.  Scores need not be normalised; :func:`normalize` turns them into
a posterior probability distribution and :func:`argmax` names the top
candidate under the one canonical tie-break used everywhere in this
package (highest score, then smallest ``repr``).

The contract that keeps historical numbers stable: an estimator's
``guess()`` must equal ``argmax(rank(payload_id))`` whenever it names a
suspect — ``guess()`` remains the argmax of the posterior surface, so all
detection statistics stay seed-for-seed identical whether or not the
privacy metrics run.

:func:`estimator_rank` adapts *any* estimator to the posterior protocol:
objects without a ``rank`` method degrade to a point mass on their
``guess()`` (or an empty surface when they abstain), so third-party
estimators keep working in privacy-enabled experiments.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Protocol, Tuple, runtime_checkable

Scores = Dict[Hashable, float]


@runtime_checkable
class PosteriorEstimator(Protocol):
    """What the experiment harness expects from a posterior-capable estimator."""

    def guess(self, payload_id: Hashable) -> Optional[Hashable]:
        """The single best guess for the originator (``None`` = abstain)."""

    def rank(self, payload_id: Hashable) -> Scores:
        """Non-negative suspicion score per candidate (empty = no evidence)."""


def canonical_order(scores: Scores) -> List[Tuple[Hashable, float]]:
    """Candidates from most to least suspect, ties broken by ``repr``.

    This is the one ordering every metric (top-k, expected rank) and every
    ``guess`` tie-break in this package agrees on, so a posterior and its
    argmax can never disagree about who the prime suspect is.
    """
    return sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))


def argmax(scores: Scores) -> Optional[Hashable]:
    """The top candidate under the canonical order (``None`` when empty)."""
    if not scores:
        return None
    return min(scores.items(), key=lambda item: (-item[1], repr(item[0])))[0]


def normalize(scores: Scores) -> Scores:
    """Scores as a probability distribution (empty stays empty).

    Raises:
        ValueError: for negative scores or an all-zero surface.
    """
    if not scores:
        return {}
    if any(value < 0 for value in scores.values()):
        raise ValueError("posterior scores must be non-negative")
    total = sum(scores.values())
    if total <= 0:
        raise ValueError("posterior scores sum to zero")
    return {node: value / total for node, value in scores.items()}


def estimator_rank(estimator: object, payload_id: Hashable) -> Scores:
    """The posterior surface of *any* estimator for one broadcast.

    Estimators implementing the posterior protocol answer through
    ``rank()``; plain point-guess estimators degrade to a unit mass on
    their ``guess()`` (the distribution a certain attacker holds) or an
    empty surface when they abstain.  Either way the result feeds the
    metrics engine unchanged.
    """
    rank = getattr(estimator, "rank", None)
    if callable(rank):
        return rank(payload_id)
    guessed = estimator.guess(payload_id)  # type: ignore[attr-defined]
    return {} if guessed is None else {guessed: 1.0}
