"""Multi-round intersection (long-term disclosure) attacks.

A single broadcast leaves the attacker with a posterior over candidate
originators; repeated broadcasts by the *same* sender leak far more.  The
classic intersection attack multiplies the per-round posteriors: nodes that
appear as suspects in every round (the sender, its DC-net group, its
topological neighbourhood) accumulate weight, while candidates that churn
from round to round — relay artefacts, diffusion froth — are suppressed.
This is the first estimator surface in this repository that spans rounds
and sessions rather than attacking each broadcast in isolation.

The combination runs in log space with a per-round smoothing floor: a
candidate a round never mentioned is not impossible (the spies simply did
not see it), merely unlikely, so it receives a small fraction of that
round's smallest observed probability instead of probability zero.  Without
the floor one blind spot would veto an otherwise perfectly consistent
suspect — the well-known brittleness of the pure intersection; with it the
attack degrades gracefully into a weighted vote.

Rounds with an empty posterior carry no information and are skipped.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.privacy.posterior import Scores, normalize

#: A missing candidate scores this fraction of the round's smallest
#: observed probability.
DEFAULT_FLOOR_RATIO = 0.01


def combine_posteriors(
    rounds: Iterable[Scores],
    floor_ratio: float = DEFAULT_FLOOR_RATIO,
) -> Scores:
    """The product posterior over every candidate any round mentioned.

    Args:
        rounds: per-round posterior surfaces (unnormalised accepted);
            empty surfaces are skipped as uninformative.
        floor_ratio: smoothing floor for candidates absent from a round,
            as a fraction of that round's smallest positive probability.

    Returns:
        The normalised combined posterior, or ``{}`` when every round was
        uninformative.

    Raises:
        ValueError: for a non-positive ``floor_ratio`` or negative scores.
    """
    if floor_ratio <= 0:
        raise ValueError("floor_ratio must be positive")
    informative = [
        {node: p for node, p in normalize(scores).items() if p > 0}
        for scores in rounds
        if scores
    ]
    if not informative:
        return {}
    log_weight: Dict[Hashable, float] = {}
    # Candidates first mentioned in a later round retroactively pay the
    # floor of every earlier round; ``debt`` carries that running sum.
    debt = 0.0
    log_ratio = math.log(floor_ratio)
    for posterior in informative:
        # Summed in log space: tiny tail probabilities (down to denormal
        # floats) would underflow to 0.0 if multiplied first.
        log_floor = math.log(min(posterior.values())) + log_ratio
        for node in log_weight:
            if node not in posterior:
                log_weight[node] += log_floor
        for node, p in posterior.items():
            log_weight[node] = log_weight.get(node, debt) + math.log(p)
        debt += log_floor
    peak = max(log_weight.values())
    return normalize(
        {node: math.exp(value - peak) for node, value in log_weight.items()}
    )


class IntersectionAttack:
    """Accumulates per-round posteriors keyed by (suspected) sender.

    The experiment harness keys rounds by the ground-truth sender — the
    simulation-side stand-in for the linkage a real attacker obtains from
    on-chain identities (the same wallet posting many transactions).  Each
    key holds the rounds observed so far; :meth:`combined` multiplies them
    per :func:`combine_posteriors`.

    Example:
        >>> attack = IntersectionAttack()
        >>> attack.observe("wallet", {"a": 0.5, "b": 0.5})
        >>> attack.observe("wallet", {"a": 0.5, "c": 0.5})
        >>> suspect, _ = max(attack.combined("wallet").items(),
        ...                  key=lambda item: item[1])
        >>> suspect
        'a'
    """

    def __init__(self, floor_ratio: float = DEFAULT_FLOOR_RATIO) -> None:
        if floor_ratio <= 0:
            raise ValueError("floor_ratio must be positive")
        self.floor_ratio = floor_ratio
        self._rounds: Dict[Hashable, List[Scores]] = {}

    def observe(self, sender_key: Hashable, scores: Scores) -> None:
        """Record one round's posterior for ``sender_key``.

        Empty surfaces are recorded (they count as rounds observed) but
        carry no weight in the combination.
        """
        self._rounds.setdefault(sender_key, []).append(dict(scores))

    def keys(self) -> List[Hashable]:
        """The sender keys observed so far, in first-seen order."""
        return list(self._rounds)

    def rounds(self, sender_key: Hashable) -> int:
        """Informative (non-empty) rounds recorded for ``sender_key``."""
        return sum(1 for scores in self._rounds.get(sender_key, ()) if scores)

    def combined(self, sender_key: Hashable) -> Scores:
        """The multiplied posterior for one sender (``{}`` when blind)."""
        return combine_posteriors(
            self._rounds.get(sender_key, ()), self.floor_ratio
        )

    def outcomes(self) -> List[Tuple[Hashable, int, Scores]]:
        """``(sender_key, informative_rounds, combined)`` per sender key."""
        return [
            (key, self.rounds(key), self.combined(key))
            for key in self._rounds
        ]
