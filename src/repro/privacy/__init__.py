"""Privacy measurement: posteriors, anonymity metrics, intersection attacks.

The paper's privacy goals are phrased in three vocabularies that this package
makes measurable:

* **k-anonymity** (Phase 1): the attacker cannot narrow the originator down
  below the honest members of the DC-net group —
  :mod:`repro.privacy.anonymity`.
* **Obfuscation / entropy** (Phase 2): the probability of identifying the
  true origin should approach ``1/n`` (perfect obfuscation) —
  :mod:`repro.privacy.entropy`.
* **Detection statistics** (attacks): precision and recall of a
  deanonymisation adversary over many transactions —
  :mod:`repro.privacy.detection`.

On top of the point metrics sits the measurement subsystem that every
experiment runs through (see ``docs/PRIVACY.md``):

* :mod:`repro.privacy.posterior` — the posterior protocol: estimators
  expose ``rank(payload_id) -> {node: score}`` surfaces, with ``guess()``
  as the argmax.
* :mod:`repro.privacy.metrics` — the streaming engine turning posterior
  surfaces into per-broadcast Shannon/min-entropy, anonymity-set,
  expected-rank and top-k numbers and aggregating them per experiment.
* :mod:`repro.privacy.intersection` — the multi-round intersection
  (long-term disclosure) attack multiplying posteriors across broadcasts
  that share a sender.
"""

from repro.privacy.anonymity import anonymity_set_size, is_k_anonymous, k_anonymity_level
from repro.privacy.detection import DetectionStats, evaluate_attack
from repro.privacy.entropy import (
    min_entropy,
    normalized_entropy,
    obfuscation_gap,
    shannon_entropy,
    top_probability,
)
from repro.privacy.intersection import IntersectionAttack, combine_posteriors
from repro.privacy.metrics import (
    DEFAULT_TOP_K,
    BroadcastPrivacy,
    IntersectionReport,
    PrivacyAccumulator,
    PrivacyConfig,
    PrivacyReport,
    broadcast_privacy,
    summarize_intersection,
)
from repro.privacy.posterior import (
    PosteriorEstimator,
    argmax,
    canonical_order,
    estimator_rank,
    normalize,
)

__all__ = [
    "anonymity_set_size",
    "is_k_anonymous",
    "k_anonymity_level",
    "DetectionStats",
    "evaluate_attack",
    "min_entropy",
    "normalized_entropy",
    "obfuscation_gap",
    "shannon_entropy",
    "top_probability",
    "IntersectionAttack",
    "combine_posteriors",
    "DEFAULT_TOP_K",
    "BroadcastPrivacy",
    "IntersectionReport",
    "PrivacyAccumulator",
    "PrivacyConfig",
    "PrivacyReport",
    "broadcast_privacy",
    "summarize_intersection",
    "PosteriorEstimator",
    "argmax",
    "canonical_order",
    "estimator_rank",
    "normalize",
]
