"""Privacy metrics: anonymity sets, entropy, detection statistics.

The paper's privacy goals are phrased in three vocabularies that this package
makes measurable:

* **k-anonymity** (Phase 1): the attacker cannot narrow the originator down
  below the honest members of the DC-net group —
  :mod:`repro.privacy.anonymity`.
* **Obfuscation / entropy** (Phase 2): the probability of identifying the
  true origin should approach ``1/n`` (perfect obfuscation) —
  :mod:`repro.privacy.entropy`.
* **Detection statistics** (attacks): precision and recall of a
  deanonymisation adversary over many transactions —
  :mod:`repro.privacy.detection`.
"""

from repro.privacy.anonymity import anonymity_set_size, is_k_anonymous, k_anonymity_level
from repro.privacy.detection import DetectionStats, evaluate_attack
from repro.privacy.entropy import (
    normalized_entropy,
    obfuscation_gap,
    shannon_entropy,
    top_probability,
)

__all__ = [
    "anonymity_set_size",
    "is_k_anonymous",
    "k_anonymity_level",
    "DetectionStats",
    "evaluate_attack",
    "normalized_entropy",
    "obfuscation_gap",
    "shannon_entropy",
    "top_probability",
]
