"""The first-spy (first-timestamp) estimator.

The cheapest effective deanonymisation strategy against symmetric broadcast
protocols: the adversary guesses that the originator of a transaction is the
first non-adversarial node observed relaying it to any spy.  Against plain
flooding this is highly accurate once a significant fraction of nodes is
compromised — the situation depicted in Fig. 2 of the paper — while
statistical spreading mechanisms (Dandelion, adaptive diffusion) and the
DC-net phase remove the correlation between "first relayer seen" and
"originator".

The estimator reads through an index-backed
:class:`~repro.adversary.observer.AdversaryView`, so guessing the source of
one payload costs O(traffic of that payload seen by spies) — it does not
rescan the simulator's full send log, which matters when a sweep attacks
hundreds of broadcasts on one simulator.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.adversary.observer import AdversaryView
from repro.network.simulator import Simulator


class FirstSpyEstimator:
    """Guess the originator as the first relayer observed by any spy node."""

    def __init__(
        self,
        simulator: Simulator,
        observers: Iterable[Hashable],
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.view = AdversaryView(simulator, observers)
        self.kinds = kinds

    def guess(self, payload_id: Hashable) -> Optional[Hashable]:
        """The adversary's single best guess for the originator.

        Returns ``None`` when no spy observed the payload, or when the
        earliest observation came from another spy (the adversary knows its
        own nodes did not originate the transaction under the
        honest-but-curious model and abstains).
        """
        candidates = self.view.first_relayers(payload_id, self.kinds)
        if not candidates:
            return None
        return min(candidates.items(), key=lambda item: (item[1], repr(item[0])))[0]

    def posterior(self, payload_id: Hashable) -> Dict[Hashable, float]:
        """A simple posterior: weight each first-relayer by recency rank.

        The first relayer observed receives the largest weight, later ones
        exponentially less.  This is a heuristic confidence model used for
        the entropy-based privacy metrics; the headline detection numbers use
        :meth:`guess`.
        """
        candidates = self.view.first_relayers(payload_id, self.kinds)
        if not candidates:
            return {}
        ranked = sorted(candidates.items(), key=lambda item: (item[1], repr(item[0])))
        weights = {node: 0.5**rank for rank, (node, _) in enumerate(ranked)}
        total = sum(weights.values())
        return {node: weight / total for node, weight in weights.items()}
