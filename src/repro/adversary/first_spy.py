"""The first-spy (first-timestamp) estimator.

The cheapest effective deanonymisation strategy against symmetric broadcast
protocols: the adversary guesses that the originator of a transaction is the
first non-adversarial node observed relaying it to any spy.  Against plain
flooding this is highly accurate once a significant fraction of nodes is
compromised — the situation depicted in Fig. 2 of the paper — while
statistical spreading mechanisms (Dandelion, adaptive diffusion) and the
DC-net phase remove the correlation between "first relayer seen" and
"originator".

Beyond the point guess, the estimator implements the posterior protocol of
:mod:`repro.privacy.posterior`: :meth:`FirstSpyEstimator.rank` scores every
first relayer by its timestamp gap to the earliest one, which is what the
privacy-metrics engine (:mod:`repro.privacy.metrics`) turns into entropy,
anonymity-set and top-k numbers.  ``guess()`` remains the argmax of that
surface, so detection statistics are unchanged by the richer output.

The estimator reads through an index-backed
:class:`~repro.adversary.observer.AdversaryView`, so guessing the source of
one payload costs O(traffic of that payload seen by spies) — it does not
rescan the simulator's full send log, which matters when a sweep attacks
hundreds of broadcasts on one simulator.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.adversary.observer import AdversaryView
from repro.network.simulator import Simulator
from repro.privacy.posterior import normalize


class FirstSpyEstimator:
    """Guess the originator as the first relayer observed by any spy node."""

    def __init__(
        self,
        simulator: Simulator,
        observers: Iterable[Hashable],
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.view = AdversaryView(simulator, observers)
        self.kinds = kinds

    def guess(self, payload_id: Hashable) -> Optional[Hashable]:
        """The adversary's single best guess for the originator.

        Returns ``None`` when no spy observed the payload, or when the
        earliest observation came from another spy (the adversary knows its
        own nodes did not originate the transaction under the
        honest-but-curious model and abstains).

        This is the argmax of :meth:`rank` under the canonical tie-break
        (maximal score, then smallest ``repr``) — kept as a direct
        first-seen lookup so the historical detection numbers are
        reproduced instruction for instruction.
        """
        candidates = self.view.first_relayers(payload_id, self.kinds)
        if not candidates:
            return None
        return min(candidates.items(), key=lambda item: (item[1], repr(item[0])))[0]

    def rank(self, payload_id: Hashable) -> Dict[Hashable, float]:
        """Suspicion score per candidate from the first-relay timestamp gaps.

        The relayer seen earliest is the prime suspect; every other
        candidate decays exponentially with its gap to that earliest time,
        measured in units of the median inter-arrival gap between
        consecutive first-relay times (so the scores adapt to the latency
        scale of the environment instead of hard-coding one).  Equal
        timestamps receive equal scores, which makes the argmax of this
        surface coincide with :meth:`guess` exactly.

        Returns an empty surface when no spy observed the payload.
        """
        candidates = self.view.first_relayers(payload_id, self.kinds)
        if not candidates:
            return {}
        times = sorted(candidates.values())
        earliest = times[0]
        gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
        if gaps:
            gaps.sort()
            scale = gaps[len(gaps) // 2]
        else:
            scale = 1.0
        return {
            node: 2.0 ** (-(seen - earliest) / scale)
            for node, seen in candidates.items()
        }

    def posterior(self, payload_id: Hashable) -> Dict[Hashable, float]:
        """The normalised :meth:`rank` surface (empty when nothing was seen)."""
        return normalize(self.rank(payload_id))
