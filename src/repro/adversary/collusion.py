"""Collusion inside a DC-net group.

If ``c`` of the ``k`` members of a DC-net group are adversarial, the DC-net
still hides the sender perfectly among the remaining ``ℓ = k - c`` honest
members (Section V-B: sender ``ℓ``-anonymity).  The colluders can subtract
their own contributions but learn nothing further — unless every other member
is compromised, in which case the sender is exposed.

Two surfaces expose that model:

* :func:`group_collusion_posterior` — the analytic posterior given full
  knowledge of the group and the compromised set (used by the privacy
  bounds analyses and tests);
* :class:`DcNetCollusionEstimator` — the same attacker wired into the
  experiment harness: it reconstructs the group from the DC-net share
  traffic its spy nodes received (a spy inside the group sees shares from
  every other member) and reports the uniform posterior over the honest
  members.  Its ``guess()`` abstains unless exactly one honest member
  remains — colluders cannot break ℓ-anonymity, and the estimator says so.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.adversary.observer import AdversaryView
from repro.network.simulator import Simulator


def group_collusion_posterior(
    group: Iterable[Hashable],
    compromised: Iterable[Hashable],
    true_sender: Hashable,
) -> Dict[Hashable, float]:
    """The colluders' posterior over the sender of a group broadcast.

    Args:
        group: all members of the DC-net group.
        compromised: the adversarial members.
        true_sender: ground-truth sender (used only to handle the degenerate
            case where the sender itself is one of the colluders, in which
            case there is nothing left to infer).

    Returns:
        ``{candidate: probability}`` over the candidates the colluders cannot
        rule out.  Honest members are indistinguishable, so the posterior is
        uniform over them; if the sender is a colluder the posterior is a
        point mass on it (the adversary trivially knows its own actions).

    Raises:
        ValueError: if the sender is not a group member or the group is empty.
    """
    members = sorted(set(group), key=repr)
    if not members:
        raise ValueError("the group is empty")
    if true_sender not in members:
        raise ValueError("the sender must be a member of the group")
    compromised_set: Set[Hashable] = set(compromised) & set(members)

    if true_sender in compromised_set:
        return {true_sender: 1.0}

    honest = [m for m in members if m not in compromised_set]
    # The DC-net output is information-theoretically independent of which
    # honest member sent, so the posterior over honest members stays uniform.
    return {member: 1.0 / len(honest) for member in honest}


class DcNetCollusionEstimator:
    """Group-collusion attacker with the harness estimator interface.

    The adversary's spies record every DC-net share they receive
    (``dc_exchange`` traffic is delivered over direct group channels, so
    only group members see it).  From those observations the estimator
    reconstructs the broadcast's group — every observed share sender plus
    the observing spies themselves — and applies the collusion model: the
    posterior is uniform over the group's honest members.

    Against protocols without a DC-net phase (or when no spy sits in the
    originating group) the spies see no share traffic and the estimator is
    blind: empty :meth:`rank`, abstaining :meth:`guess`.
    """

    #: The wire kind of DC-net share traffic (``ThreePhaseNode.DC_KIND``;
    #: kept literal so the adversary package does not import protocol code).
    DC_KINDS: Tuple[str, ...] = ("dc_exchange",)

    def __init__(
        self,
        simulator: Simulator,
        observers: Iterable[Hashable],
    ) -> None:
        self.view = AdversaryView(simulator, observers)

    def _honest_members(self, payload_id: Hashable) -> Set[Hashable]:
        """Group members the colluders cannot rule out for one payload."""
        observers = self.view.observers
        members: Set[Hashable] = set()
        for obs in self.view.observations_of(payload_id, self.DC_KINDS):
            if obs.sender is not None:
                members.add(obs.sender)
            members.add(obs.receiver)
        return members - observers

    def rank(self, payload_id: Hashable) -> Dict[Hashable, float]:
        """Uniform posterior over the observed group's honest members."""
        honest = self._honest_members(payload_id)
        if not honest:
            return {}
        weight = 1.0 / len(honest)
        return {member: weight for member in honest}

    def guess(self, payload_id: Hashable) -> Optional[Hashable]:
        """Name the sender only when a single honest member remains.

        ℓ-anonymity is information-theoretic: with two or more honest
        members the colluders' posterior is exactly uniform, so any guess
        would be noise.  The estimator abstains rather than coin-flip,
        keeping detection statistics meaningful.
        """
        honest = self._honest_members(payload_id)
        if len(honest) != 1:
            return None
        return next(iter(honest))
