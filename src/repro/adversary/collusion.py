"""Collusion inside a DC-net group.

If ``c`` of the ``k`` members of a DC-net group are adversarial, the DC-net
still hides the sender perfectly among the remaining ``ℓ = k - c`` honest
members (Section V-B: sender ``ℓ``-anonymity).  The colluders can subtract
their own contributions but learn nothing further — unless every other member
is compromised, in which case the sender is exposed.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set


def group_collusion_posterior(
    group: Iterable[Hashable],
    compromised: Iterable[Hashable],
    true_sender: Hashable,
) -> Dict[Hashable, float]:
    """The colluders' posterior over the sender of a group broadcast.

    Args:
        group: all members of the DC-net group.
        compromised: the adversarial members.
        true_sender: ground-truth sender (used only to handle the degenerate
            case where the sender itself is one of the colluders, in which
            case there is nothing left to infer).

    Returns:
        ``{candidate: probability}`` over the candidates the colluders cannot
        rule out.  Honest members are indistinguishable, so the posterior is
        uniform over them; if the sender is a colluder the posterior is a
        point mass on it (the adversary trivially knows its own actions).

    Raises:
        ValueError: if the sender is not a group member or the group is empty.
    """
    members = sorted(set(group), key=repr)
    if not members:
        raise ValueError("the group is empty")
    if true_sender not in members:
        raise ValueError("the sender must be a member of the group")
    compromised_set: Set[Hashable] = set(compromised) & set(members)

    if true_sender in compromised_set:
        return {true_sender: 1.0}

    honest = [m for m in members if m not in compromised_set]
    # The DC-net output is information-theoretically independent of which
    # honest member sent, so the posterior over honest members stays uniform.
    return {member: 1.0 / len(honest) for member in honest}
