"""The honest-but-curious adversary's view of a simulation run.

The adversary controls a set of observer nodes.  Everything those nodes
receive — message, arrival time, previous hop, whether the message came over
an overlay link or a direct (group) channel — is available for analysis;
nothing else is.  :class:`AdversaryView` answers exactly those queries by
reading the simulator's indexed
:class:`~repro.network.observation_store.ObservationStore`: per-payload
queries walk the smaller of the payload index and the observers' per-receiver
index, so the cost is O(relevant traffic) rather than O(all traffic), which
is what makes running the estimators inside large parameter sweeps cheap.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.network.message import Observation
from repro.network.simulator import Simulator


class AdversaryView:
    """Read-only view of the observations available to a set of observers.

    The view is live: it reads the simulator's observation store on every
    query, so it can be constructed once and reused as a simulation
    progresses.  All queries are scoped by payload and/or kind, which keeps
    them index-backed.
    """

    def __init__(
        self, simulator: Simulator, observers: Iterable[Hashable]
    ) -> None:
        self.observers: Set[Hashable] = set(observers)
        self._store = simulator.store

    @property
    def observations(self) -> List[Observation]:
        """All deliveries received by observer nodes, in delivery order."""
        return self._store.for_receivers(self.observers)

    def observations_of(
        self,
        payload_id: Hashable,
        kinds: Optional[Tuple[str, ...]] = None,
        include_direct: bool = True,
    ) -> List[Observation]:
        """Observations concerning one payload, optionally filtered by kind."""
        result = self._store.for_receivers(
            self.observers, payload_id=payload_id, kinds=kinds
        )
        if include_direct:
            return result
        return [obs for obs in result if not obs.direct]

    def first_observation(
        self,
        payload_id: Hashable,
        kinds: Optional[Tuple[str, ...]] = None,
        include_direct: bool = True,
    ) -> Optional[Observation]:
        """The earliest observation of the payload, or ``None``."""
        candidates = self.observations_of(payload_id, kinds, include_direct)
        if not candidates:
            return None
        return min(candidates, key=lambda obs: (obs.time, obs.message.uid))

    def first_relayers(
        self,
        payload_id: Hashable,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> Dict[Hashable, float]:
        """Earliest time each non-observer node was seen relaying the payload.

        This is the statistic the Biryukov-style attack aggregates: the first
        non-adversarial peer to forward a transaction to any spy node.
        """
        first_seen: Dict[Hashable, float] = {}
        for obs in self.observations_of(payload_id, kinds):
            sender = obs.sender
            if sender is None or sender in self.observers:
                continue
            if sender not in first_seen or obs.time < first_seen[sender]:
                first_seen[sender] = obs.time
        return first_seen
