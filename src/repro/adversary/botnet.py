"""Botnet deployment: selecting the adversary's observer nodes.

The paper motivates the network-level threat with botnet attacks: an
adversary cheaply controls a fraction of the peer-to-peer network (around
20 % in the Biryukov et al. measurement) or injects well-connected
supernodes, and records who relayed which transaction first.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, List, Optional, Set

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.adversary.observer import AdversaryView
    from repro.network.simulator import Simulator


@dataclass
class BotnetDeployment:
    """The set of nodes under adversary control.

    Attributes:
        observers: node identities controlled by the adversary.
        fraction: fraction of the overlay the observers represent.
        supernodes: identities of injected supernodes (empty when the botnet
            consists purely of compromised existing nodes).
    """

    observers: Set[Hashable]
    fraction: float
    supernodes: List[Hashable] = field(default_factory=list)

    def is_compromised(self, node: Hashable) -> bool:
        """Whether ``node`` is under adversary control."""
        return node in self.observers

    def view(self, simulator: "Simulator") -> "AdversaryView":
        """The botnet's observation view of ``simulator``.

        A thin convenience wrapping
        :class:`~repro.adversary.observer.AdversaryView`, which reads the
        simulator's indexed observation store; the returned view is live and
        can be reused across broadcasts on the same simulator.
        """
        from repro.adversary.observer import AdversaryView

        return AdversaryView(simulator, self.observers)


def deploy_botnet(
    graph: nx.Graph,
    fraction: float,
    rng: random.Random,
    protected: Optional[Set[Hashable]] = None,
) -> BotnetDeployment:
    """Compromise a uniformly random ``fraction`` of the overlay's nodes.

    Args:
        graph: the overlay.
        fraction: fraction of nodes to compromise, in ``[0, 1)``.
        rng: randomness source.
        protected: nodes that can never be compromised (e.g. the node whose
            privacy an experiment evaluates).

    Raises:
        ValueError: if the fraction is out of range.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError("the compromised fraction must be in [0, 1)")
    protected = protected or set()
    candidates = [node for node in sorted(graph.nodes, key=repr) if node not in protected]
    count = int(round(fraction * graph.number_of_nodes()))
    count = min(count, len(candidates))
    observers = set(rng.sample(candidates, count)) if count else set()
    return BotnetDeployment(observers=observers, fraction=fraction)


def inject_supernodes(
    graph: nx.Graph,
    count: int,
    connections_per_node: int,
    rng: random.Random,
    prefix: str = "spy",
) -> BotnetDeployment:
    """Add ``count`` highly connected adversary nodes to the overlay.

    The graph is modified in place: each supernode connects to
    ``connections_per_node`` uniformly chosen existing nodes, mirroring the
    "few nodes with many interconnects" strategy the paper mentions.
    """
    if count < 1 or connections_per_node < 1:
        raise ValueError("count and connections_per_node must be positive")
    existing = sorted(graph.nodes, key=repr)
    if connections_per_node > len(existing):
        raise ValueError("more connections requested than existing nodes")
    supernodes: List[Hashable] = []
    for index in range(count):
        node_id = f"{prefix}-{index}"
        graph.add_node(node_id, reachable=True, adversarial=True)
        for peer in rng.sample(existing, connections_per_node):
            graph.add_edge(node_id, peer)
        supernodes.append(node_id)
    fraction = count / graph.number_of_nodes()
    return BotnetDeployment(
        observers=set(supernodes), fraction=fraction, supernodes=supernodes
    )
