"""Adversary models: honest-but-curious observers and source estimators.

The paper's attacker (Section IV-A) follows the protocol and only analyses
what it legitimately observes.  Its power comes from scale: by deploying a
botnet it controls a fraction of the network's nodes and records the arrival
time and previous hop of every message those nodes receive (the attack of
Biryukov et al. the paper cites).

Every estimator in this package implements the posterior protocol of
:mod:`repro.privacy.posterior`: a ``rank(payload_id) -> {node: score}``
surface feeding the privacy-metrics engine, with ``guess(payload_id)`` as
its argmax so detection statistics stay unchanged.

* :mod:`repro.adversary.botnet` — choosing/injecting the observer nodes.
* :mod:`repro.adversary.observer` — collecting the observations visible to
  the adversary from a simulation run.
* :mod:`repro.adversary.first_spy` — the first-spy (first-timestamp)
  estimator used against broadcast protocols; its posterior weighs first
  relayers by timestamp gap.
* :mod:`repro.adversary.rumor_centrality` — the maximum-likelihood rumor
  source estimator (Shah–Zaman) used against diffusion snapshots; its
  posterior is the per-candidate centrality likelihood.
* :mod:`repro.adversary.collusion` — what colluding DC-net group members
  learn about the sender within their group: the analytic
  ``group_collusion_posterior`` and the harness-ready
  ``DcNetCollusionEstimator`` reconstructing groups from observed share
  traffic.
"""

from repro.adversary.botnet import (
    BotnetDeployment,
    deploy_botnet,
    inject_supernodes,
)
from repro.adversary.collusion import (
    DcNetCollusionEstimator,
    group_collusion_posterior,
)
from repro.adversary.first_spy import FirstSpyEstimator
from repro.adversary.observer import AdversaryView
from repro.adversary.rumor_centrality import (
    RumorCentralityEstimator,
    infected_snapshot,
    rumor_centrality,
    rumor_source_estimate,
    rumor_source_from_metrics,
)

__all__ = [
    "RumorCentralityEstimator",
    "BotnetDeployment",
    "deploy_botnet",
    "inject_supernodes",
    "DcNetCollusionEstimator",
    "group_collusion_posterior",
    "FirstSpyEstimator",
    "AdversaryView",
    "infected_snapshot",
    "rumor_centrality",
    "rumor_source_estimate",
    "rumor_source_from_metrics",
]
