"""Rumor-centrality source estimation (Shah & Zaman).

When the adversary obtains a *snapshot* of which nodes are infected (rather
than relay timestamps), the maximum-likelihood estimate of the source on a
regular tree is the node with the highest rumor centrality within the
infected subgraph.  Adaptive diffusion is designed precisely so that this
estimator (and any other snapshot-based estimator) performs close to random
guessing: the true source is equally likely to be anywhere in the infected
subgraph.

The implementation follows the message-passing formulation: for a candidate
root ``v`` of the infected subtree, the number of infection orderings rooted
at ``v`` is ``N! / prod(subtree sizes)``; rumor centrality compares these
counts across candidates.  General graphs are handled by evaluating each
candidate on a BFS tree of the infected subgraph rooted at that candidate,
the standard heuristic from the original paper.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.network.metrics import MetricsCollector
    from repro.network.simulator import Simulator


def _subtree_sizes(tree: nx.Graph, root: Hashable) -> Dict[Hashable, int]:
    """Size of the subtree under every node of ``tree`` rooted at ``root``."""
    sizes: Dict[Hashable, int] = {}
    order: List[Hashable] = list(nx.dfs_postorder_nodes(tree, root))
    parents = {
        child: parent for parent, child in nx.bfs_edges(tree, root)
    }
    for node in order:
        sizes[node] = 1 + sum(
            sizes[child]
            for child in tree.neighbors(node)
            if parents.get(child) == node
        )
    return sizes


def rumor_centrality(
    graph: nx.Graph, infected: Iterable[Hashable], candidate: Hashable
) -> float:
    """Log rumor centrality of ``candidate`` within the infected subgraph.

    Returns ``-inf`` for candidates that are not infected or whose infected
    component does not span all infected nodes.
    """
    infected_set = set(infected)
    if candidate not in infected_set:
        return float("-inf")
    subgraph = graph.subgraph(infected_set)
    if not nx.is_connected(subgraph):
        # An infection snapshot should be connected; fall back to the
        # candidate's component (other components cannot contain the source).
        component = nx.node_connected_component(subgraph, candidate)
        subgraph = subgraph.subgraph(component)
    tree = nx.bfs_tree(subgraph, candidate).to_undirected()
    sizes = _subtree_sizes(tree, candidate)
    n = tree.number_of_nodes()
    log_value = math.lgamma(n + 1)
    for node in tree.nodes:
        log_value -= math.log(sizes[node])
    return log_value


def rumor_source_estimate(
    graph: nx.Graph, infected: Iterable[Hashable]
) -> Optional[Hashable]:
    """The infected node with maximal rumor centrality (ties: smallest repr).

    Returns ``None`` when the infected set is empty.
    """
    infected_list = sorted(set(infected), key=repr)
    if not infected_list:
        return None
    scored = [
        (rumor_centrality(graph, infected_list, candidate), candidate)
        for candidate in infected_list
    ]
    best_score = max(score for score, _ in scored)
    winners = [candidate for score, candidate in scored if score == best_score]
    return sorted(winners, key=repr)[0]


def infected_snapshot(
    metrics: "MetricsCollector",
    payload_id: Hashable,
    at_time: Optional[float] = None,
) -> List[Hashable]:
    """The nodes holding the payload at ``at_time`` (default: end of run).

    This is the input a snapshot adversary feeds to
    :func:`rumor_source_estimate`.  It is served from the metrics collector's
    per-payload delivery index, so taking a snapshot costs O(infected nodes)
    rather than a scan over the whole send log.
    """
    if at_time is None:
        return metrics.delivered_nodes(payload_id)
    return [
        node
        for node in metrics.delivered_nodes(payload_id)
        if metrics.delivery_time(node, payload_id) <= at_time
    ]


def rumor_source_from_metrics(
    graph: nx.Graph,
    metrics: "MetricsCollector",
    payload_id: Hashable,
    at_time: Optional[float] = None,
) -> Optional[Hashable]:
    """Run the snapshot estimator directly against a finished simulation."""
    return rumor_source_estimate(
        graph, infected_snapshot(metrics, payload_id, at_time)
    )


class RumorCentralityEstimator:
    """Snapshot adversary with the same interface as ``FirstSpyEstimator``.

    The experiment harness treats estimators as interchangeable
    ``factory(simulator, observers) → .guess(payload_id)`` objects.  This one
    models an adversary that obtains an end-of-run infection snapshot and
    names the node with maximal rumor centrality; the observer set is
    accepted for interface compatibility but unused — a snapshot adversary's
    power does not come from owning relay nodes.

    The estimator also implements the posterior protocol
    (:mod:`repro.privacy.posterior`): :meth:`rank` exposes the per-candidate
    likelihood surface (rumor centralities are ordering counts, i.e.
    unnormalised likelihoods under the SI model), of which :meth:`guess` is
    the argmax.  The centrality pass over the infected subgraph is computed
    once per payload and shared by both methods.
    """

    def __init__(
        self,
        simulator: "Simulator",
        observers: Iterable[Hashable] = (),
    ) -> None:
        self.simulator = simulator
        self.observers = set(observers)
        self._scored: Dict[Hashable, List[Tuple[float, Hashable]]] = {}

    def _scores(self, payload_id: Hashable) -> List[Tuple[float, Hashable]]:
        """Cached ``(log_centrality, candidate)`` pairs for one payload."""
        if payload_id not in self._scored:
            infected = sorted(
                set(
                    infected_snapshot(self.simulator.metrics, payload_id)
                ),
                key=repr,
            )
            graph = self.simulator.graph
            self._scored[payload_id] = [
                (rumor_centrality(graph, infected, candidate), candidate)
                for candidate in infected
            ]
        return self._scored[payload_id]

    def guess(self, payload_id: Hashable) -> Optional[Hashable]:
        """The snapshot adversary's single best guess for the originator.

        Identical to :func:`rumor_source_estimate` on the end-of-run
        snapshot (maximal centrality, ties broken by smallest ``repr``).
        """
        scored = self._scores(payload_id)
        if not scored:
            return None
        best_score = max(score for score, _ in scored)
        winners = [candidate for score, candidate in scored if score == best_score]
        return sorted(winners, key=repr)[0]

    def rank(self, payload_id: Hashable) -> Dict[Hashable, float]:
        """Relative likelihood per infected candidate.

        Log centralities are shifted by their maximum before
        exponentiation, so the prime suspect scores 1.0 and everything else
        a fraction of it — numerically safe for snapshots of any size.
        Candidates whose centrality is ``-inf`` (not in the infected
        component) are omitted; an empty snapshot yields an empty surface.
        """
        scored = self._scores(payload_id)
        finite = [(s, c) for s, c in scored if s != float("-inf")]
        if not finite:
            return {}
        peak = max(score for score, _ in finite)
        return {
            candidate: math.exp(score - peak) for score, candidate in finite
        }
