"""E13 — anonymity curves: privacy metrics vs adversary fraction.

The privacy subsystem (``docs/PRIVACY.md``) turns every attack experiment
into information-theoretic anonymity numbers.  E13 sweeps the adversary
fraction for *every* registered protocol in the shared face-off
environment (the ``e13_anonymity_curves`` preset) and reports the
attacker-posterior entropy, min-entropy, the true sender's expected rank
and the top-1 success rate — the curves the paper's Section V-B argues
about, measured instead of asserted.

Two shape claims are pinned:

* more spies never *hurt* the attacker: the true sender's expected rank is
  weakly decreasing in the adversary fraction for every protocol;
* the paper's protocol beats plain flooding on posterior entropy at every
  fraction (the DC-net + diffusion phases genuinely blur the posterior,
  not just the point guess).
"""

from repro.analysis.reporting import format_table
from repro.protocols import available_protocols
from repro.scenarios import AdversarySpec, run_scenario_once, scenario

ADVERSARY_FRACTIONS = (0.1, 0.2, 0.3)

#: The registered curve environment; every cell is a derived spec.
BASE = scenario("e13_anonymity_curves")

#: Per-protocol options (same rationale as E12: the paper's three-phase
#: parameters, adaptive diffusion bounded so runs terminate).
PROTOCOL_OPTIONS = {
    "three_phase": {"group_size": 5, "diffusion_depth": 3},
    "adaptive_diffusion": {"max_rounds": 10, "max_time": 500.0},
}


def _measure():
    curves = {}
    for name in available_protocols():
        curves[name] = [
            run_scenario_once(
                BASE.derive(
                    protocol=name,
                    protocol_options=PROTOCOL_OPTIONS.get(name, {}),
                    adversary=AdversarySpec(fraction=fraction),
                )
            )
            for fraction in ADVERSARY_FRACTIONS
        ]
    return curves


def test_e13_anonymity_curves(benchmark):
    curves = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["protocol", "adversary", "entropy (bits)", "min-entropy",
             "expected rank", "top-1", "intersection entropy"],
            [
                [
                    name,
                    f"{fraction:.0%}",
                    res.privacy.entropy,
                    res.privacy.min_entropy,
                    res.privacy.expected_rank,
                    res.privacy.top_k_success[0],
                    res.privacy.intersection.entropy,
                ]
                for name, results in curves.items()
                for fraction, res in zip(ADVERSARY_FRACTIONS, results)
            ],
            title="E13: attacker-posterior anonymity vs adversary fraction",
        )
    )

    population = BASE.topology.params["num_nodes"]
    max_entropy = population.bit_length()  # loose log2 bound
    for name, results in curves.items():
        assert len(results) == len(ADVERSARY_FRACTIONS)
        for res in results:
            assert res.privacy is not None
            assert res.privacy.broadcasts == BASE.workload.broadcasts
            assert 0.0 <= res.privacy.entropy <= max_entropy
            assert 1.0 <= res.privacy.expected_rank <= population
        # More spies never hurt the attacker: the true sender's expected
        # rank is weakly decreasing along the fraction sweep.
        ranks = [res.privacy.expected_rank for res in results]
        assert ranks == sorted(ranks, reverse=True), (name, ranks)

    # The paper's protocol keeps the posterior blurrier than flooding at
    # every adversary fraction.
    for flood_res, three_res in zip(curves["flood"], curves["three_phase"]):
        assert three_res.privacy.entropy > flood_res.privacy.entropy
        assert (
            three_res.detection.detection_probability
            <= flood_res.detection.detection_probability
        )
