"""E14 — adversary models: adaptation curves and blame overhead.

The adversary & fault library (``docs/ADVERSARIES.md``) upgrades the
attacker from a passive botnet to active models.  E14 measures the two
that change the paper's numbers:

* **adaptation curve** — attacker-posterior entropy vs the number of
  broadcasts the adaptive attacker has observed, against the static
  botnet on the identical workload.  The pinned shape: the adaptive
  advantage (static entropy minus adaptive entropy) is positive at every
  point and weakly grows with rounds — acting on the posterior compounds.
* **blame overhead curve** — the commit-then-open blame protocol's
  transmissions per disrupted round vs the DC-net group size.  The pinned
  shape: overhead is at least ``2·k·(k−1)`` (digests + openings for every
  directed member pair) and strictly grows with the configured group
  size, while every flip disruption is attributed to exactly the
  disruptor.
"""

import dataclasses

from repro.analysis.experiment import run_attack_experiment
from repro.analysis.reporting import format_table
from repro.network.topology import random_regular_overlay
from repro.protocols import protocol_class
from repro.scenarios import run_scenario_once, scenario
from repro.threat import ByzantineDCNetAdversary

ADAPTIVE_ROUNDS = (2, 6, 12)
GROUP_SIZES = (3, 5, 8)

#: The registered adaptive environment; every cell is a derived spec.
BASE = scenario("adv_adaptive_mixed_senders")


def _measure_adaptation():
    curve = []
    for rounds in ADAPTIVE_ROUNDS:
        by_model = {}
        for model in ("adaptive", "static"):
            spec = BASE.derive(
                workload=dataclasses.replace(
                    BASE.workload, broadcasts=rounds
                ),
                adversary=dataclasses.replace(
                    BASE.adversary, model=model, model_params={}
                ),
            )
            by_model[model] = run_scenario_once(spec)
        curve.append((rounds, by_model))
    return curve


def _measure_blame():
    overlay = random_regular_overlay(100, degree=8, seed=11)
    curve = []
    for group_size in GROUP_SIZES:
        result = run_attack_experiment(
            overlay,
            protocol_class("three_phase").from_options(
                group_size=group_size, diffusion_depth=3
            ),
            0.1,
            broadcasts=4,
            seed=5,
            privacy=False,
            # Dissolve keeps the membership intact, so every disrupted
            # round pays the full group's blame cost.
            adversary=ByzantineDCNetAdversary(
                tamper="flip", policy="dissolve"
            ),
        )
        curve.append((group_size, result.adversary_metrics))
    return curve


def test_e14_adaptive_entropy_curve(benchmark):
    curve = benchmark.pedantic(_measure_adaptation, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["rounds", "adaptive entropy", "static entropy", "advantage",
             "repositions"],
            [
                [
                    rounds,
                    res["adaptive"].privacy.entropy,
                    res["static"].privacy.entropy,
                    res["static"].privacy.entropy
                    - res["adaptive"].privacy.entropy,
                    res["adaptive"].adversary_metrics[
                        "adaptive_repositions"
                    ],
                ]
                for rounds, res in curve
            ],
            title="E14: attacker-posterior entropy vs adaptive rounds",
        )
    )
    advantages = [
        res["static"].privacy.entropy - res["adaptive"].privacy.entropy
        for _, res in curve
    ]
    assert all(advantage > 0 for advantage in advantages)
    # Compounding: more observed rounds never shrink the advantage.
    assert all(
        later >= earlier - 1e-9
        for earlier, later in zip(advantages, advantages[1:])
    )


def test_e14_blame_overhead_curve(benchmark):
    curve = benchmark.pedantic(_measure_blame, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["group size", "blame rounds", "overhead/round",
             "floor 2k(k-1)", "correct attributions"],
            [
                [
                    group_size,
                    metrics["blame_rounds"],
                    metrics["blame_overhead_messages"]
                    / metrics["blame_rounds"],
                    2 * group_size * (group_size - 1),
                    metrics["blame_correct_attributions"],
                ]
                for group_size, metrics in curve
            ],
            title="E14: blame protocol overhead vs DC-net group size",
        )
    )
    per_round = []
    for group_size, metrics in curve:
        assert metrics["blame_rounds"] > 0
        # Flip disruptions are always attributable — to the disruptor.
        assert (
            metrics["blame_correct_attributions"]
            == metrics["blame_rounds"]
        )
        overhead = (
            metrics["blame_overhead_messages"] / metrics["blame_rounds"]
        )
        # Digests + openings for every directed pair of the (at least
        # group_size-strong) group.
        assert overhead >= 2 * group_size * (group_size - 1)
        per_round.append(overhead)
    assert per_round == sorted(per_round)
    assert per_round[0] < per_round[-1]
