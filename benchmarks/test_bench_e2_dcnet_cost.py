"""E2 — §V-A: the DC-net phase costs O(k²) messages per round.

The paper states Phase 1 incurs O(k²) messages periodically and proposes the
32-bit length-announcement round to keep idle rounds cheap.  The benchmark
measures both: the quadratic per-round message count as the group size grows,
and the byte savings of announcement rounds over full-frame idle rounds.
"""

import random

from repro.analysis.reporting import format_table
from repro.dcnet.group_session import DCNetGroupSession
from repro.dcnet.round import expected_messages

GROUP_SIZES = [4, 6, 8, 10]


def _measure():
    rows = []
    for k in GROUP_SIZES:
        announced = DCNetGroupSession(list(range(k)), random.Random(k))
        fixed = DCNetGroupSession(
            list(range(k)), random.Random(k), announcement_rounds=False,
            fixed_frame_length=256,
        )
        idle_announced = announced.run_round()
        idle_fixed = fixed.run_round()
        announced.queue_message(0, b"x" * 200)
        delivery = announced.run_round()
        rows.append(
            {
                "k": k,
                "per_round_messages": idle_announced.messages_sent,
                "expected": expected_messages(k),
                "idle_bytes_announced": idle_announced.bytes_sent,
                "idle_bytes_fixed": idle_fixed.bytes_sent,
                "delivery_messages": delivery.messages_sent,
            }
        )
    return rows


def test_e2_dcnet_cost(benchmark):
    rows = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["k", "msgs/round", "3k(k-1)", "idle bytes (announce)", "idle bytes (full)", "delivery msgs"],
            [
                [r["k"], r["per_round_messages"], r["expected"],
                 r["idle_bytes_announced"], r["idle_bytes_fixed"], r["delivery_messages"]]
                for r in rows
            ],
            title="E2: DC-net per-round cost",
        )
    )
    for row in rows:
        # Exact O(k^2): every round is 3·k·(k-1) point-to-point messages.
        assert row["per_round_messages"] == row["expected"]
        # The announcement optimisation makes idle rounds much cheaper in bytes.
        assert row["idle_bytes_announced"] < row["idle_bytes_fixed"] / 4
        # A delivery costs the announcement round plus the payload round.
        assert row["delivery_messages"] == 2 * row["expected"]
    # Quadratic growth: doubling k (4 -> 8) should roughly quadruple the cost.
    cost4 = rows[0]["per_round_messages"]
    cost8 = rows[2]["per_round_messages"]
    assert 3.0 <= cost8 / cost4 <= 5.0
