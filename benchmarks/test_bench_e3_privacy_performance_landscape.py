"""E3 — Fig. 1: the privacy–performance landscape.

The figure sketches three regions: cryptographic systems (strong privacy,
poor performance), topological systems (good performance, privacy breaks with
many observers), and the paper's combined protocol in between.  The benchmark
measures, for the same overlay and a 20 % adversary, the first-spy detection
probability (privacy axis) and the messages per broadcast (performance axis)
of flooding, Dandelion and the three-phase protocol.
"""

from repro.analysis.reporting import format_table
from repro.scenarios import ConditionsSpec, SeedPolicy, run_scenario_once, scenario

ADVERSARY_FRACTION = 0.2

#: The three-phase point of the landscape is the registered preset; the
#: baseline points derive protocol, conditions and seed from it — the same
#: historical environments the legacy ``attack_experiment`` shim used
#: (baselines on per-edge internet latency, three-phase on constant 0.1).
BASE = scenario("e3_privacy_performance_landscape")


def _measure():
    results = {
        "flood": run_scenario_once(
            BASE.derive(
                protocol="flood", protocol_options={},
                conditions=ConditionsSpec(), seeds=SeedPolicy(base_seed=1),
            )
        ),
        "dandelion": run_scenario_once(
            BASE.derive(
                protocol="dandelion", protocol_options={},
                conditions=ConditionsSpec(), seeds=SeedPolicy(base_seed=2),
            )
        ),
        "three_phase": run_scenario_once(BASE),
    }
    return results


def test_e3_privacy_performance_landscape(benchmark):
    results = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["protocol", "detection probability", "messages/broadcast", "anonymity floor"],
            [
                [
                    name,
                    res.detection.detection_probability,
                    res.messages_per_broadcast,
                    res.anonymity_floor,
                ]
                for name, res in results.items()
            ],
            title=f"E3: privacy vs performance ({ADVERSARY_FRACTION:.0%} adversary)",
        )
    )
    flood = results["flood"]
    three_phase = results["three_phase"]
    dandelion = results["dandelion"]
    # Privacy ordering: the combined protocol is (much) harder to deanonymise
    # than plain flooding; Dandelion sits in between or near the protocol.
    assert three_phase.detection.detection_probability < flood.detection.detection_probability
    assert dandelion.detection.detection_probability <= flood.detection.detection_probability
    # Performance ordering: privacy costs messages — flooding is cheapest.
    assert flood.messages_per_broadcast <= three_phase.messages_per_broadcast
    # Only the combined protocol carries a cryptographic anonymity floor.
    assert three_phase.anonymity_floor > flood.anonymity_floor
