"""E11 — scale: the parallel sweep engine on 2,000–5,000-node overlays.

The paper's own evaluation stops at 1,000 peers ("a first simulation").
This benchmark pushes the substrate toward the ROADMAP's production-scale
goal: it sweeps the network size over multi-thousand-node overlays through
``ParallelSweep`` and checks two properties at once:

* **determinism** — the parallel engine returns exactly the serial
  ``sweep()`` results, seed for seed, so scaling out does not change any
  reproduced number, and
* **indexed queries** — on a 2,000-node run, the metrics queries the
  adversaries and benchmarks hammer (``message_count`` with the mixed
  kind+payload filter, ``first_observations``, ``observations_for``) are
  answered from the observation store's indexes; the benchmark asserts their
  results against naive scans of the full log.

The pytest-benchmark payload is the parallel sweep itself; compare its time
against the printed serial time to see the fan-out win on multi-core
hardware.
"""

import pytest

from repro.analysis.parallel import run_parallel
from repro.analysis.reporting import format_table
from repro.analysis.sweep import sweep
from repro.broadcast.flood import run_flood
from repro.network.topology import random_regular_overlay

SIZES = [2000, 5000]
REPETITIONS = 2
BASE_SEED = 7


def _flood_at_scale(size, seed):
    """One flood broadcast on a ``size``-node Bitcoin-like overlay."""
    overlay = random_regular_overlay(int(size), degree=8, seed=seed)
    result = run_flood(overlay, source=0, seed=seed)
    assert result.reach == overlay.number_of_nodes()
    return {
        "messages": float(result.messages),
        "completion_time": float(result.completion_time),
    }


def test_e11_parallel_sweep_at_scale(benchmark):
    parallel = benchmark.pedantic(
        run_parallel,
        args=(SIZES, _flood_at_scale),
        kwargs={"repetitions": REPETITIONS, "base_seed": BASE_SEED},
        iterations=1,
        rounds=1,
    )
    serial = sweep(
        SIZES, _flood_at_scale, repetitions=REPETITIONS, base_seed=BASE_SEED
    )
    # The engine's core contract: scaling out changes nothing but wall-clock.
    assert parallel == serial

    print()
    print(
        format_table(
            ["network size", "messages (mean)", "completion time"],
            [
                [size, row["messages"], row["completion_time"]]
                for size, row in zip(SIZES, parallel)
            ],
            title="E11: flood cost at 2,000-5,000 peers (parallel sweep)",
        )
    )
    # Flood cost stays near 2|E| - |V| + 1 at every scale (degree-8 overlay:
    # |E| = 4n, so about 7n messages).
    for size, row in zip(SIZES, parallel):
        assert 0.9 * (7 * size) <= row["messages"] <= 2 * 4 * size


def test_e11_indexed_queries_at_scale(overlay_2000):
    result = run_flood(overlay_2000, source=0, seed=0)
    simulator = result.simulator
    metrics = simulator.metrics
    # The naive oracles below genuinely scan the whole log — the exact use
    # case of the lazy ``iter_observations()`` view (no full-list copy per
    # scan).
    assert len(simulator.store) > 10_000

    # Mixed kind+payload filter: index lookup == naive scan.
    naive_mixed = sum(
        1
        for obs in simulator.iter_observations()
        if obs.message.kind == "flood" and obs.message.payload_id == "tx"
    )
    assert metrics.message_count(kind="flood", payload_id="tx") == naive_mixed
    assert metrics.message_count(kind="flood", payload_id="other") == 0

    # First observation per receiver: index == chronological scan.
    naive_first = {}
    for obs in simulator.iter_observations():
        if obs.message.payload_id == "tx" and obs.receiver not in naive_first:
            naive_first[obs.receiver] = obs
    assert metrics.first_observations("tx") == naive_first

    # Observer-scoped slice: per-receiver index == full-log filter.
    observers = list(range(0, 2000, 97))
    observer_set = set(observers)
    naive_visible = [
        obs
        for obs in simulator.iter_observations()
        if obs.receiver in observer_set
    ]
    assert simulator.observations_for(observers) == naive_visible


@pytest.fixture(scope="module")
def overlay_2000():
    """A 2,000-peer Bitcoin-like overlay (degree 8)."""
    return random_regular_overlay(2000, degree=8, seed=45)
