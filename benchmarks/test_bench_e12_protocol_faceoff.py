"""E12 — beyond the paper: all registered protocols under one environment.

The legacy experiments (E3–E5, E8) reproduce the paper's numbers and keep
their historical per-protocol latency defaults.  E12 is the registry-era
version of the comparison: every protocol in :mod:`repro.protocols` —
including the previously unreachable ``gossip`` and standalone
``adaptive_diffusion`` — runs through the one harness under literally the
same :class:`~repro.network.conditions.NetworkConditions`, with both the
first-spy and the rumor-centrality estimator, so the privacy/cost ordering
is measured without environmental bias.
"""

from repro.analysis.reporting import format_table
from repro.protocols import available_protocols
from repro.scenarios import AdversarySpec, run_scenario_once, scenario

ADVERSARY_FRACTION = 0.2
BROADCASTS = 6

#: The registered face-off environment (overlay, internet-like conditions,
#: 20% adversary, seed 12); every protocol's cell is a derived spec.
BASE = scenario("e12_protocol_faceoff")

#: Per-protocol options for the face-off (same as ``BASE`` for three-phase;
#: adaptive diffusion is bounded so lossy runs terminate).
PROTOCOL_OPTIONS = {
    "three_phase": dict(BASE.protocol_options),
    "adaptive_diffusion": {"max_rounds": 10, "max_time": 500.0},
}


def _spec(name, estimator="first_spy"):
    return BASE.derive(
        protocol=name,
        protocol_options=PROTOCOL_OPTIONS.get(name, {}),
        adversary=AdversarySpec(
            fraction=ADVERSARY_FRACTION, estimator=estimator
        ),
    )


def _measure():
    results = {
        name: run_scenario_once(_spec(name))
        for name in available_protocols()
    }
    # The snapshot adversary, on the two protocols it is the natural attack
    # against (diffusion hides the source from snapshots by design).
    snapshots = {
        name: run_scenario_once(_spec(name, estimator="rumor_centrality"))
        for name in ("flood", "adaptive_diffusion")
    }
    return results, snapshots


def test_e12_protocol_faceoff(benchmark):
    results, snapshots = benchmark.pedantic(
        _measure, iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["protocol", "first-spy detection", "messages/broadcast",
             "mean reach", "anonymity floor"],
            [
                [
                    name,
                    res.detection.detection_probability,
                    res.messages_per_broadcast,
                    res.mean_reach,
                    res.anonymity_floor,
                ]
                for name, res in results.items()
            ],
            title=(
                "E12: registry face-off under identical conditions "
                f"({ADVERSARY_FRACTION:.0%} adversary)"
            ),
        )
    )
    print()
    print(
        format_table(
            ["protocol", "rumor-centrality detection"],
            [
                [name, res.detection.detection_probability]
                for name, res in snapshots.items()
            ],
            title="E12b: snapshot (rumor-centrality) adversary",
        )
    )

    # Every registered protocol ran through the one entry point.
    assert set(results) == set(available_protocols())
    for name, res in results.items():
        assert res.detection.total == BROADCASTS
        assert res.messages_per_broadcast > 0
        # Lossless conditions: complete protocols deliver everywhere, gossip
        # (bounded fanout) nearly everywhere.
        assert res.mean_reach >= (0.9 if name == "gossip" else 1.0)
    # The paper's headline ordering, now measured without environmental
    # bias: the three-phase protocol is hardest to deanonymise, plain
    # flooding easiest (and cheapest).
    flood = results["flood"]
    three_phase = results["three_phase"]
    assert (
        three_phase.detection.detection_probability
        <= flood.detection.detection_probability
    )
    assert flood.messages_per_broadcast <= three_phase.messages_per_broadcast
    assert three_phase.anonymity_floor > 1
