"""Tracked wall-clock benchmark harness behind ``scripts/bench.py``.

The pytest-benchmark files in this directory guard *shape* properties of the
reproduction; this module is the other half of the performance story: a
dependency-free harness that times the E-series hot paths the same way on
every machine, writes the numbers to a ``BENCH_<label>.json`` report, and
compares reports so a regression in events/sec is caught as a number, not a
feeling.

Design points:

* **Scenarios** pair an untimed ``setup`` (building overlays, encoding
  frames) with a timed ``run`` returning the number of simulated events it
  processed, so ``events/sec`` measures engine throughput, not scenario
  construction.
* **Warmup + median**: every scenario runs ``warmup`` throwaway iterations
  (heating allocator, caches and lazily-built latency tables), then the
  median of ``repeats`` timed iterations is reported — robust against a
  single noisy run.
* **Calibration**: each report stores the throughput of a fixed pure-Python
  spin loop measured at report time.  Comparisons divide events/sec by it,
  which removes most of the machine-to-machine CPU difference, so a report
  produced on one machine remains a usable baseline on another (and is
  exact on the same machine).
* **Peak RSS** comes from ``resource.getrusage`` — memory regressions of
  the event core show up next to the time regressions.

The harness deliberately imports nothing outside the standard library plus
``repro`` itself, so ``scripts/bench.py --src <tree>`` can aim the very same
harness at an older source tree for before/after tables.
"""

from __future__ import annotations

import gc
import random
import resource
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = [
    "Scenario",
    "SCENARIOS",
    "adaptive_attack_scenario",
    "attack_privacy_scenario",
    "byzantine_blame_scenario",
    "calibrate",
    "compare_reports",
    "dcnet_round_scenario",
    "flood_runphase_scenario",
    "flood_scenario",
    "gossip_scenario",
    "memory_gate",
    "peak_rss_kib",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "telemetry_overhead",
]


@dataclass(frozen=True)
class Scenario:
    """One benchmark scenario: untimed setup, timed run, event count.

    Attributes:
        name: stable identifier; reports are compared per name.
        description: one line for tables and logs.
        setup: builds the scenario context (overlays, frames); not timed,
            run once per measurement.
        run: executes the measured workload on the context (or, with a
            ``prepare`` hook, on that repeat's prepared state) and returns
            the number of simulated events it processed.
        prepare: optional untimed per-repeat hook: called before *every*
            warmup and timed iteration with the setup context, its return
            value handed to ``run`` instead of the context.  The scale
            tiers use it to build the per-run simulator (hundreds of
            thousands of node objects) outside the timed region, so
            events/sec measures delivery throughput, not allocation.
        smoke: whether the scenario is part of the quick ``--smoke`` set.
        engine: the delivery engine the scenario exercises (``"event"``,
            ``"batched"``, ``"sharded"`` — or ``"event"`` for scenarios
            the knob does not apply to).  ``scripts/bench.py --engines``
            filters on it.
        memory_budget_mib: peak-RSS ceiling for this scenario in MiB, or
            ``None`` for no budget.  ``ru_maxrss`` is a process-lifetime
            high-water mark, so the budget must cover everything that ran
            in the process *before* this scenario too — the tracked suite
            orders scenarios by ascending footprint to keep the bound
            meaningful, and the scale tiers carry budgets sized to their
            own footprint plus that headroom.
    """

    name: str
    description: str
    setup: Callable[[], Any]
    run: Callable[[Any], int]
    prepare: Optional[Callable[[Any], Any]] = None
    smoke: bool = False
    engine: str = "event"
    memory_budget_mib: Optional[float] = None


def flood_scenario(
    name: str,
    size: int,
    degree: int = 8,
    overlay_seed: int = 9,
    run_seed: int = 0,
    smoke: bool = False,
    engine: str = "event",
    memory_budget_mib: Optional[float] = None,
) -> Scenario:
    """Flood-and-prune broadcast on a ``size``-node random-regular overlay.

    Events are the deliveries the engine performed (the observation log
    length), i.e. exactly the per-event work of ``Simulator.run``.
    ``engine`` selects the simulator's delivery engine — both produce
    identical logs, so the event counts of an ``"event"`` and a
    ``"batched"`` tier of the same size are directly comparable.
    """

    def setup() -> Any:
        from repro.network.topology import random_regular_overlay

        return random_regular_overlay(size, degree=degree, seed=overlay_seed)

    def run(overlay: Any) -> int:
        from repro.broadcast.flood import run_flood

        result = run_flood(overlay, source=0, seed=run_seed, engine=engine)
        return len(result.simulator.store)

    return Scenario(
        name=name,
        description=f"E11 flood-and-prune broadcast, {size:,} peers "
        f"(degree {degree}, {engine} engine)",
        setup=setup,
        run=run,
        smoke=smoke,
        engine=engine,
        memory_budget_mib=memory_budget_mib,
    )


def flood_runphase_scenario(
    name: str,
    size: int,
    degree: int = 8,
    overlay_seed: int = 9,
    run_seed: int = 0,
    smoke: bool = False,
    engine: str = "event",
    shards: Optional[int] = None,
    memory_budget_mib: Optional[float] = None,
) -> Scenario:
    """Pure run-phase flood tier: session construction is untimed.

    The plain flood tiers time ``run_flood`` end to end, simulator
    construction included.  At 250k+ nodes allocating the node objects
    costs as much as delivering to them and would hide the engines'
    actual throughput difference, so these tiers build the session in the
    untimed ``prepare`` hook and time only the delivery run.  Events are
    the observation-log length, directly comparable across engines and
    shard counts (all engines produce identical logs).
    """

    def setup() -> Any:
        from repro.network.topology import random_regular_overlay

        return random_regular_overlay(size, degree=degree, seed=overlay_seed)

    def prepare(overlay: Any) -> Any:
        from repro.broadcast.flood import FloodNode
        from repro.network.latency import ConstantLatency
        from repro.network.simulator import Simulator

        sim = Simulator(
            overlay,
            latency=ConstantLatency(0.1),
            seed=run_seed,
            engine=engine,
            shards=shards,
        )
        sim.populate(FloodNode)
        sim.node(0).originate("tx")
        return sim

    def run(sim: Any) -> int:
        sim.run_until_idle()
        return len(sim.store)

    shard_note = f", {shards} shards" if shards is not None else ""
    return Scenario(
        name=name,
        description=f"E11 flood run phase, {size:,} peers "
        f"(degree {degree}, {engine} engine{shard_note})",
        setup=setup,
        run=run,
        prepare=prepare,
        smoke=smoke,
        engine=engine,
        memory_budget_mib=memory_budget_mib,
    )


def gossip_scenario(
    name: str,
    size: int,
    fanout: int = 4,
    degree: int = 8,
    overlay_seed: int = 9,
    run_seed: int = 0,
    smoke: bool = False,
    engine: str = "event",
    memory_budget_mib: Optional[float] = None,
) -> Scenario:
    """Probabilistic gossip broadcast on a ``size``-node overlay.

    The gossip fan-out draws from the protocol RNG per fresh node, so this
    tier exercises the batched engine's per-node sampling path (the part a
    pure flood never touches) at scale.
    """

    def setup() -> Any:
        from repro.network.topology import random_regular_overlay

        return random_regular_overlay(size, degree=degree, seed=overlay_seed)

    def run(overlay: Any) -> int:
        from repro.broadcast.gossip import GossipConfig, run_gossip

        result = run_gossip(
            overlay,
            source=0,
            config=GossipConfig(fanout=fanout),
            seed=run_seed,
            engine=engine,
        )
        return len(result.simulator.store)

    return Scenario(
        name=name,
        description=f"E11 gossip broadcast, {size:,} peers "
        f"(fanout {fanout}, {engine} engine)",
        setup=setup,
        run=run,
        smoke=smoke,
        engine=engine,
        memory_budget_mib=memory_budget_mib,
    )


def dcnet_round_scenario(
    name: str,
    frame_length: int = 1024,
    group_size: int = 8,
    rounds: int = 5,
    smoke: bool = False,
) -> Scenario:
    """DC-net rounds (Fig. 4) at ``frame_length``-byte frames.

    Events are the point-to-point share transmissions: ``3·k·(k−1)`` per
    round.  The XOR kernels dominate, so this scenario tracks the
    ``crypto/pads.py`` fast path.
    """

    def setup() -> Any:
        from repro.dcnet.collision import encode_payload

        group = list(range(group_size))
        frame = encode_payload(
            b"one anonymous blockchain transaction", frame_length
        )
        return group, frame

    def run(context: Any) -> int:
        from repro.dcnet.round import run_round

        group, frame = context
        rng = random.Random(0)
        events = 0
        for _ in range(rounds):
            result = run_round(group, {3: frame}, frame_length, rng)
            events += result.messages_sent
        return events

    return Scenario(
        name=name,
        description=f"E6 DC-net round, {frame_length} B frames, "
        f"group of {group_size}, {rounds} rounds",
        setup=setup,
        run=run,
        smoke=smoke,
    )


def attack_privacy_scenario(
    name: str,
    size: int = 200,
    degree: int = 8,
    overlay_seed: int = 43,
    adversary_fraction: float = 0.2,
    broadcasts: int = 5,
    run_seed: int = 0,
    smoke: bool = False,
) -> Scenario:
    """First-spy attack experiment with the privacy-metrics engine on.

    Times the full per-broadcast pipeline the scenario layer runs: flood
    dissemination, estimator posterior, streaming anonymity metrics and the
    multi-round intersection attack.  Events are the deliveries performed
    (messages per broadcast times broadcasts), so the number tracks the
    same engine work as the flood scenarios plus the measurement overhead.
    """

    def setup() -> Any:
        from repro.network.topology import random_regular_overlay

        return random_regular_overlay(size, degree=degree, seed=overlay_seed)

    def run(overlay: Any) -> int:
        from repro.analysis.experiment import run_attack_experiment
        from repro.network.conditions import NetworkConditions

        result = run_attack_experiment(
            overlay,
            "flood",
            adversary_fraction,
            broadcasts=broadcasts,
            seed=run_seed,
            conditions=NetworkConditions(),
        )
        assert result.privacy is not None
        return int(round(result.messages_per_broadcast * broadcasts))

    return Scenario(
        name=name,
        description=f"E13 attack + privacy metrics, {size} peers, "
        f"{adversary_fraction:.0%} adversary, {broadcasts} broadcasts",
        setup=setup,
        run=run,
        smoke=smoke,
    )


def adaptive_attack_scenario(
    name: str,
    size: int = 150,
    degree: int = 8,
    overlay_seed: int = 47,
    adversary_fraction: float = 0.2,
    broadcasts: int = 8,
    run_seed: int = 0,
    smoke: bool = False,
) -> Scenario:
    """E14 — first-spy attack with the posterior-chasing adaptive attacker.

    The adaptive model (``repro/threat/adaptive.py``) re-draws the
    monitored set between broadcasts from the accumulated posterior mass,
    so this scenario times the full adaptation loop on top of the E13
    pipeline: dissemination, estimator, score folding and re-placement.
    Events are the deliveries performed, comparable to E13's number — the
    gap between the two is the cost of adapting.
    """

    def setup() -> Any:
        from repro.network.topology import random_regular_overlay

        return random_regular_overlay(size, degree=degree, seed=overlay_seed)

    def run(overlay: Any) -> int:
        from repro.analysis.experiment import run_attack_experiment
        from repro.network.conditions import NetworkConditions
        from repro.threat import AdaptiveMonitoringAdversary

        result = run_attack_experiment(
            overlay,
            "flood",
            adversary_fraction,
            broadcasts=broadcasts,
            seed=run_seed,
            conditions=NetworkConditions(),
            adversary=AdaptiveMonitoringAdversary(),
        )
        assert result.adversary_metrics["adaptive_repositions"] > 0
        return int(round(result.messages_per_broadcast * broadcasts))

    return Scenario(
        name=name,
        description=f"E14 adaptive attacker, {size} peers, "
        f"{adversary_fraction:.0%} adversary, {broadcasts} broadcasts",
        setup=setup,
        run=run,
        smoke=smoke,
    )


def byzantine_blame_scenario(
    name: str,
    size: int = 100,
    group_size: int = 8,
    broadcasts: int = 4,
    run_seed: int = 5,
    smoke: bool = False,
) -> Scenario:
    """E14 — Byzantine DC-net member forcing full blame investigations.

    Each attacked broadcast replays the source's group as a committed
    round with flipped shares and runs the commit-then-open investigation
    (``repro/dcnet/blame.py``) to a verdict.  Events are the blame
    protocol's own transmissions (share digests + openings), so the number
    tracks the countermeasure's overhead, not the broadcast underneath.
    """

    def setup() -> Any:
        from repro.network.topology import random_regular_overlay

        return random_regular_overlay(size, degree=8, seed=11)

    def run(overlay: Any) -> int:
        from repro.analysis.experiment import run_attack_experiment
        from repro.protocols import protocol_class
        from repro.threat import ByzantineDCNetAdversary

        result = run_attack_experiment(
            overlay,
            protocol_class("three_phase").from_options(
                group_size=group_size, diffusion_depth=3
            ),
            0.1,
            broadcasts=broadcasts,
            seed=run_seed,
            privacy=False,
            adversary=ByzantineDCNetAdversary(tamper="flip", policy="expel"),
        )
        overhead = int(result.adversary_metrics["blame_overhead_messages"])
        assert overhead > 0
        return overhead

    return Scenario(
        name=name,
        description=f"E14 Byzantine blame rounds, {size} peers, "
        f"groups of {group_size}, {broadcasts} broadcasts",
        setup=setup,
        run=run,
        smoke=smoke,
    )


#: The tracked scenario suite.  ``--smoke`` runs the marked subset.  Kept
#: in ascending memory-footprint order so the process-lifetime ``ru_maxrss``
#: bound stays tight for the budgeted scale tiers at the end.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        dcnet_round_scenario("e6_dcnet_round_1kib", smoke=True),
        flood_scenario("e1_flood_1000", size=1000, smoke=True),
        flood_scenario("e11_flood_2000", size=2000, smoke=True),
        flood_scenario("e11_flood_5000", size=5000),
        flood_scenario("e11_flood_5000_batched", size=5000, engine="batched"),
        attack_privacy_scenario("e13_attack_privacy_200", smoke=True),
        adaptive_attack_scenario("e14_adaptive_attack_150", smoke=True),
        byzantine_blame_scenario("e14_byzantine_blame_100", smoke=True),
        # Scale tiers: only tractable on the batched engine (the event loop
        # needs minutes at 50k+), so only batched variants are tracked.
        gossip_scenario(
            "e11_gossip_50000_batched",
            size=50_000,
            engine="batched",
            memory_budget_mib=1024.0,
        ),
        flood_scenario(
            "e11_flood_50000_batched",
            size=50_000,
            engine="batched",
            memory_budget_mib=1024.0,
        ),
        flood_scenario(
            "e11_flood_100000_batched",
            size=100_000,
            engine="batched",
            memory_budget_mib=2048.0,
        ),
        # Run-phase tiers (untimed ``prepare``): session construction is
        # excluded, so these measure delivery throughput alone — the
        # apples-to-apples comparison between the batched engine and the
        # sharded engine's worker fan-out at the same node count.  The
        # sharded shard counts are the measured sweet spots per size (see
        # docs/BENCHMARKS.md for the full shard-count curve).
        flood_runphase_scenario(
            "e11_flood_250000_batched",
            size=250_000,
            engine="batched",
            memory_budget_mib=2048.0,
        ),
        flood_runphase_scenario(
            "e11_flood_250000_sharded",
            size=250_000,
            engine="sharded",
            shards=2,
            memory_budget_mib=2048.0,
        ),
        flood_runphase_scenario(
            "e11_flood_500000_sharded",
            size=500_000,
            engine="sharded",
            shards=4,
            memory_budget_mib=2560.0,
        ),
        # The 1M smoke tier: proves the sharded engine completes a
        # million-node flood within budget; not in the --smoke set (the
        # overlay alone takes minutes to generate in CI).
        flood_runphase_scenario(
            "e11_flood_1000000_sharded",
            size=1_000_000,
            engine="sharded",
            shards=4,
            memory_budget_mib=3072.0,
        ),
    )
}


def scenario_names(smoke_only: bool = False) -> List[str]:
    """Names of the tracked scenarios (optionally only the smoke set)."""
    return [
        name
        for name, scenario in SCENARIOS.items()
        if scenario.smoke or not smoke_only
    ]


def peak_rss_kib() -> int:
    """Peak resident set size in KiB (Linux semantics), workers included.

    ``ru_maxrss`` is the process-lifetime high-water mark — it never goes
    back down — so a scenario's reported value is an *upper bound* set by
    the largest scenario run so far in the process.  The tracked suite runs
    scenarios in ascending footprint order, which makes the bound tight for
    each suite's biggest scenarios; for exact per-scenario numbers run one
    scenario per process (``scripts/bench.py --scenarios <name>``).

    The sharded engine does its delivery work in forked worker processes;
    their memory must not escape the budget gate, so the reported number is
    the maximum of the parent's high-water mark and the largest reaped
    child's (``RUSAGE_CHILDREN``).  Fork shares the parent's pages
    copy-on-write, so a worker's ``ru_maxrss`` starts near the parent's —
    the max, not the sum, is the honest per-process bound.
    """
    return max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )


def calibrate(loops: int = 3, inner: int = 200_000) -> float:
    """Machine speed reference: iterations/sec of a fixed pure-Python loop.

    Comparing ``events_per_second / calibration`` across two reports
    cancels most raw-CPU differences between the machines that produced
    them; on one machine the ratio test is identical to comparing raw
    events/sec.
    """
    best = float("inf")
    for _ in range(loops):
        accumulator = 0
        start = time.perf_counter()
        for i in range(inner):
            accumulator += i ^ (i >> 3)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return inner / best


def run_scenario(
    scenario: Scenario,
    repeats: int = 5,
    warmup: int = 1,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """Measure one scenario: median wall-clock, events/sec, peak RSS.

    The event count must be identical across repeats (scenarios are seeded
    and deterministic); a drift would mean the scenario is not measuring
    what it claims, so it fails loudly.

    With ``collect_telemetry`` the scenario runs one *extra, untimed*
    iteration under an ambient
    :class:`~repro.telemetry.recorder.TelemetryRecorder` and the result
    gains a ``"telemetry"`` block (counters, gauges, histograms,
    fallbacks, per-shard stats — spans are dropped, their wall-clock
    numbers would churn every report diff).  The timed iterations run
    without any recorder, so the measured numbers are unaffected.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    context = scenario.setup()

    def state() -> Any:
        if scenario.prepare is None:
            return context
        return scenario.prepare(context)

    for _ in range(warmup):
        scenario.run(state())
    seconds: List[float] = []
    events: Optional[int] = None
    prepared: Any = None
    for _ in range(repeats):
        # Simulator/node graphs are cyclic; collecting them *outside* the
        # timed region keeps one repeat's garbage from slowing the next and
        # makes repeats independent of how many scenarios ran before.  The
        # previous repeat's prepared state is dropped *before* the next one
        # is built — two live simulators would double a scale tier's peak.
        prepared = None
        gc.collect()
        prepared = state()
        start = time.perf_counter()
        run_events = scenario.run(prepared)
        seconds.append(time.perf_counter() - start)
        if events is None:
            events = run_events
        elif events != run_events:
            raise RuntimeError(
                f"scenario {scenario.name!r} is not deterministic: "
                f"{events} events, then {run_events}"
            )
    assert events is not None
    median_seconds = statistics.median(seconds)
    result = {
        "description": scenario.description,
        "repeats": repeats,
        "warmup": warmup,
        "events": events,
        "median_seconds": median_seconds,
        "min_seconds": min(seconds),
        "events_per_second": events / median_seconds,
        "peak_rss_kib": peak_rss_kib(),
    }
    if scenario.memory_budget_mib is not None:
        result["memory_budget_mib"] = scenario.memory_budget_mib
    if collect_telemetry:
        from repro.telemetry import TelemetryRecorder, recording

        recorder = TelemetryRecorder()
        # The recorder attaches at Simulator construction (ambient
        # lookup), so prepare-built state must happen inside the
        # recording block too.
        prepared = None
        gc.collect()
        with recording(recorder):
            scenario.run(state())
        document = recorder.to_dict()
        result["telemetry"] = {
            key: document[key]
            for key in (
                "counters", "gauges", "histograms", "fallbacks", "shards"
            )
        }
    return result


def run_suite(
    names: Sequence[str],
    repeats: int = 5,
    warmup: int = 1,
    meta: Optional[Dict[str, Any]] = None,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """Run the named scenarios and assemble a report dictionary.

    The report is what ``scripts/bench.py`` serialises to
    ``BENCH_<label>.json``: a ``meta`` block (environment + calibration) and
    one result block per scenario.  ``collect_telemetry`` adds a counter
    block per scenario (see :func:`run_scenario`); reports with and
    without the block remain mutually comparable.
    """
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenarios: {unknown}")
    import platform
    import sys

    report_meta: Dict[str, Any] = {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        # Generation time, embedded in the report: file mtimes are reset by
        # checkouts, so baseline auto-selection orders reports by this.
        "created_at": time.time(),
        "calibration_ops_per_second": calibrate(),
    }
    if meta:
        report_meta.update(meta)
    results = {
        name: run_scenario(
            SCENARIOS[name],
            repeats=repeats,
            warmup=warmup,
            collect_telemetry=collect_telemetry,
        )
        for name in names
    }
    return {"meta": report_meta, "results": results}


def telemetry_overhead(
    name: str, repeats: int = 3, warmup: int = 1
) -> Dict[str, Any]:
    """Measure the cost of an *enabled* telemetry recorder on one scenario.

    Runs the scenario's timed region ``repeats`` times without telemetry
    and ``repeats`` times under an ambient
    :class:`~repro.telemetry.recorder.TelemetryRecorder`, strictly
    interleaved (off, on, off, on, …) so machine-load drift hits both
    sides equally, then compares the *minimum* of each side — the right
    statistic for an overhead bound, since anything above the minimum is
    noise, not telemetry.

    Returns ``{"name", "off_seconds", "on_seconds", "overhead"}`` where
    ``overhead`` is ``on/off − 1`` (slightly negative values are normal
    measurement noise).
    """
    from repro.telemetry import TelemetryRecorder, recording

    scenario = SCENARIOS[name]
    context = scenario.setup()

    def state() -> Any:
        if scenario.prepare is None:
            return context
        return scenario.prepare(context)

    for _ in range(warmup):
        scenario.run(state())
    off: List[float] = []
    on: List[float] = []
    for _ in range(repeats):
        for samples, enabled in ((off, False), (on, True)):
            gc.collect()
            if not enabled:
                prepared = state()
                start = time.perf_counter()
                scenario.run(prepared)
                samples.append(time.perf_counter() - start)
            else:
                # The recorder attaches at Simulator construction, so the
                # (untimed) state build happens inside the recording block;
                # the timed region is identical to the off side.
                with recording(TelemetryRecorder()):
                    prepared = state()
                    start = time.perf_counter()
                    scenario.run(prepared)
                    samples.append(time.perf_counter() - start)
            prepared = None
    off_seconds = min(off)
    on_seconds = min(on)
    return {
        "name": name,
        "off_seconds": off_seconds,
        "on_seconds": on_seconds,
        "overhead": on_seconds / off_seconds - 1.0,
    }


def memory_gate(report: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Check every budgeted scenario of a report against its budget.

    Budgets travel inside the report (``memory_budget_mib`` per result, set
    by the scenario definition at measurement time), so the gate needs no
    baseline: it is a property of the current run alone.  Scenarios without
    a budget are not listed.

    Returns one entry per budgeted scenario::

        {"name", "status" ("ok"|"over"), "peak_rss_mib", "budget_mib"}
    """
    entries: List[Dict[str, Any]] = []
    for name, result in report["results"].items():
        budget = result.get("memory_budget_mib")
        if budget is None:
            continue
        peak_mib = result["peak_rss_kib"] / 1024.0
        entries.append(
            {
                "name": name,
                "status": "over" if peak_mib > budget else "ok",
                "peak_rss_mib": peak_mib,
                "budget_mib": float(budget),
            }
        )
    return entries


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    max_regression: float = 0.25,
) -> List[Dict[str, Any]]:
    """Compare two reports scenario by scenario.

    Throughput is normalised by each report's calibration number before
    comparing (see :func:`calibrate`).  A scenario regresses when its
    normalised events/sec drops by more than ``max_regression`` (fraction,
    e.g. ``0.25`` = 25 %).  Scenarios present in only one report are
    reported as ``"missing"`` and never fail the comparison.

    Returns one entry per scenario in the union of both reports::

        {"name", "status" ("ok"|"regression"|"improvement"|"missing"),
         "speedup", "baseline_eps", "current_eps",
         "baseline_counters", "current_counters"}

    where ``speedup`` is normalised current ÷ normalised baseline.  The
    counter entries surface each report's telemetry counter block when
    present and are ``None`` otherwise — reports written before the
    telemetry subsystem (or with it off) compare against newer ones, in
    either direction, without affecting any status.
    """

    def counters_of(result: Optional[Dict[str, Any]]) -> Optional[Any]:
        if not result:
            return None
        return result.get("telemetry", {}).get("counters")

    if not 0.0 <= max_regression < 1.0:
        raise ValueError("max_regression must be in [0, 1)")
    baseline_calibration = float(
        baseline["meta"].get("calibration_ops_per_second", 1.0)
    )
    current_calibration = float(
        current["meta"].get("calibration_ops_per_second", 1.0)
    )
    entries: List[Dict[str, Any]] = []
    names = list(
        dict.fromkeys(
            list(baseline["results"]) + list(current["results"])
        )
    )
    for name in names:
        base = baseline["results"].get(name)
        cur = current["results"].get(name)
        if base is None or cur is None:
            entries.append(
                {
                    "name": name,
                    "status": "missing",
                    "speedup": None,
                    "baseline_eps": base and base["events_per_second"],
                    "current_eps": cur and cur["events_per_second"],
                    "baseline_counters": counters_of(base),
                    "current_counters": counters_of(cur),
                }
            )
            continue
        base_normalised = base["events_per_second"] / baseline_calibration
        cur_normalised = cur["events_per_second"] / current_calibration
        speedup = cur_normalised / base_normalised
        if speedup < 1.0 - max_regression:
            status = "regression"
        elif speedup > 1.0 + max_regression:
            status = "improvement"
        else:
            status = "ok"
        entries.append(
            {
                "name": name,
                "status": status,
                "speedup": speedup,
                "baseline_eps": base["events_per_second"],
                "current_eps": cur["events_per_second"],
                "baseline_counters": counters_of(base),
                "current_counters": counters_of(cur),
            }
        )
    return entries
