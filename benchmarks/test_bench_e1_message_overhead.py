"""E1 — §V-A: adaptive diffusion vs flood-and-prune message overhead.

Paper claim: reaching all 1,000 peers took on average ~12,500 messages with
adaptive diffusion against ~7,000 messages for a regular flood-and-prune
broadcast.  The benchmark reproduces the flood figure directly and measures
the adaptive-diffusion overhead with this library's accounting (payload
messages plus token/spread control traffic, stopping at full coverage).
"""

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.broadcast.flood import run_flood
from repro.diffusion.adaptive import run_adaptive_diffusion

REPETITIONS = 3


def _measure(overlay_1000):
    flood_counts = []
    diffusion_counts = []
    diffusion_payload = []
    for seed in range(REPETITIONS):
        flood_counts.append(
            float(run_flood(overlay_1000, source=seed, seed=seed).messages)
        )
        result = run_adaptive_diffusion(overlay_1000, source=seed, seed=seed)
        assert result.reach == overlay_1000.number_of_nodes()
        diffusion_counts.append(float(result.messages))
        diffusion_payload.append(float(result.payload_messages))
    return flood_counts, diffusion_counts, diffusion_payload


def test_e1_message_overhead(benchmark, overlay_1000):
    flood, diffusion, diffusion_payload = benchmark.pedantic(
        _measure, args=(overlay_1000,), iterations=1, rounds=1
    )
    flood_mean = summarize(flood).mean
    diffusion_mean = summarize(diffusion).mean
    print()
    print(
        format_table(
            ["protocol", "messages (mean)", "paper"],
            [
                ["flood-and-prune", flood_mean, 7000],
                ["adaptive diffusion (total)", diffusion_mean, 12500],
                ["adaptive diffusion (payload only)", summarize(diffusion_payload).mean, "-"],
            ],
            title="E1: messages to reach all 1,000 peers",
        )
    )
    # Shape checks: the flood cost matches the paper closely; adaptive
    # diffusion needs additional control traffic on top of its payload
    # deliveries and is never cheaper than a spanning tree.
    assert 6000 <= flood_mean <= 8500
    assert diffusion_mean > summarize(diffusion_payload).mean
    assert diffusion_mean >= 0.75 * flood_mean
