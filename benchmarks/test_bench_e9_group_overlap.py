"""E9 — §IV-C: overlapping groups skew the origin probability.

The paper's worked example: members B and C of a 3-member group also belong
to a second group, so a message observed in the first group points to A with
probability ½ instead of ⅓.  Enforcing the same number of groups for every
node restores the uniform ⅓.  The benchmark reproduces both numbers and the
smoothing policy at a larger scale.
"""

import random

from repro.analysis.reporting import format_table
from repro.groups.overlap import (
    origin_probabilities,
    smooth_group_assignment,
    uniformity_error,
)


def _measure():
    # The paper's example.
    paper_groups = [["A", "B", "C"], ["B", "C", "D"]]
    skewed = origin_probabilities(paper_groups, observed_group=0)

    # Smoothing at scale: 60 nodes, groups of 5, every node in 2 groups.
    smoothed_groups = smooth_group_assignment(
        list(range(60)), group_size=5, groups_per_node=2, rng=random.Random(9)
    )
    worst_error = max(
        uniformity_error(origin_probabilities(smoothed_groups, index))
        for index in range(len(smoothed_groups))
    )
    return skewed, worst_error


def test_e9_group_overlap(benchmark):
    skewed, worst_error = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["metric", "value", "paper"],
            [
                ["P(origin = A) with overlap", skewed["A"], 0.5],
                ["desired uniform probability", 1 / 3, 1 / 3],
                ["worst-case deviation after smoothing", worst_error, 0.0],
            ],
            title="E9: overlapping-group probability skew",
        )
    )
    assert abs(skewed["A"] - 0.5) < 1e-9
    assert abs(skewed["B"] - 0.25) < 1e-9
    assert worst_error < 1e-9
