"""A3 (ablation) — sweep of the DC-net group size ``k``.

``k`` is the privacy floor (sender anonymity among honest group members) and
the dominant cost factor of Phase 1 (O(k²) messages per round).  The sweep
quantifies both sides of that trade-off, the flexibility knob the paper's
title refers to.
"""

from repro.analysis.reporting import format_table
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.phases import Phase

GROUP_SIZES = [3, 5, 8]


def _measure(overlay_100):
    rows = []
    for k in GROUP_SIZES:
        protocol = ThreePhaseBroadcast(
            overlay_100,
            ProtocolConfig(group_size=k, diffusion_depth=3),
            seed=200 + k,
        )
        result = protocol.broadcast(source=0, payload=f"group size {k}".encode())
        rows.append(
            {
                "k": k,
                "group": len(result.group),
                "dc_messages": result.messages_by_phase[Phase.DC_NET],
                "total": result.messages_total,
                "delivered": result.delivered_fraction,
            }
        )
    return rows


def test_a3_group_size_sweep(benchmark, overlay_100):
    rows = benchmark.pedantic(_measure, args=(overlay_100,), iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["k", "actual group size", "dc msgs", "total msgs", "delivered"],
            [[r["k"], r["group"], r["dc_messages"], r["total"], r["delivered"]] for r in rows],
            title="A3: group size sweep (100 nodes, d=3)",
        )
    )
    for row in rows:
        assert row["delivered"] == 1.0
        # The anonymity floor is the group size: k <= |group| <= 2k - 1.
        assert row["k"] <= row["group"] <= 2 * row["k"] - 1
    # Larger groups pay more for Phase 1 (O(k^2) growth).
    assert rows[-1]["dc_messages"] > rows[0]["dc_messages"]
