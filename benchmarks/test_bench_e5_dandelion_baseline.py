"""E5 — Fig. 3 / §III-A: Dandelion lowers first-spy accuracy vs flooding.

Dandelion's stem phase moves the apparent origin many hops away from the
true originator, so for the adversary fractions the paper quotes (0.15-0.35)
the first-spy estimator does noticeably worse than against plain flooding.
"""

from repro.analysis.reporting import format_table
from repro.scenarios import AdversarySpec, SeedPolicy, run_scenario_once, scenario

FRACTIONS = [0.15, 0.25, 0.35]

#: The registered Dandelion preset; each sweep point derives the fraction
#: and the historical seed (20 + index), and the flood baseline derives the
#: protocol on top — same overlay, same internet-like conditions.
BASE = scenario("e5_dandelion_baseline")


def _measure():
    rows = []
    for index, fraction in enumerate(FRACTIONS):
        point = BASE.derive(
            adversary=AdversarySpec(fraction=fraction),
            seeds=SeedPolicy(base_seed=20 + index),
        )
        flood = run_scenario_once(
            point.derive(protocol="flood", protocol_options={})
        )
        dandelion = run_scenario_once(point)
        rows.append(
            (
                fraction,
                flood.detection.detection_probability,
                dandelion.detection.detection_probability,
                dandelion.messages_per_broadcast / flood.messages_per_broadcast,
            )
        )
    return rows


def test_e5_dandelion_baseline(benchmark):
    rows = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["adversary fraction", "flood detection", "dandelion detection", "message ratio"],
            [[f"{f:.2f}", flood, dandelion, ratio] for f, flood, dandelion, ratio in rows],
            title="E5: Dandelion stem/fluff vs plain flooding",
        )
    )
    mean_flood = sum(row[1] for row in rows) / len(rows)
    mean_dandelion = sum(row[2] for row in rows) / len(rows)
    # Dandelion reduces the attacker's success on average over the sweep.
    assert mean_dandelion < mean_flood
    # Its message overhead over flooding is small (stem messages only).
    for _, _, _, ratio in rows:
        assert ratio < 1.25
