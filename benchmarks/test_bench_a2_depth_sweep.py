"""A2 (ablation) — sweep of the diffusion depth ``d``.

``d`` controls how long the statistical phase runs before the efficient
flood takes over.  The sweep measures the cost side (messages, completion
time) as ``d`` grows; the paper prescribes choosing ``d`` "based on the
network diameter to reach a large amount of nodes".
"""

from repro.analysis.reporting import format_table
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.phases import Phase

DEPTHS = [1, 2, 4, 6]


def _measure(overlay_100):
    rows = []
    for depth in DEPTHS:
        protocol = ThreePhaseBroadcast(
            overlay_100,
            ProtocolConfig(group_size=4, diffusion_depth=depth),
            seed=100 + depth,
        )
        result = protocol.broadcast(source=0, payload=f"depth {depth}".encode())
        rows.append(
            {
                "depth": depth,
                "completion": result.completion_time,
                "total": result.messages_total,
                "diffusion": result.messages_by_phase[Phase.ADAPTIVE_DIFFUSION],
                "flood": result.messages_by_phase[Phase.FLOOD],
                "delivered": result.delivered_fraction,
            }
        )
    return rows


def test_a2_depth_sweep(benchmark, overlay_100):
    rows = benchmark.pedantic(_measure, args=(overlay_100,), iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["d", "completion time", "total msgs", "diffusion msgs", "flood msgs", "delivered"],
            [
                [r["depth"], r["completion"], r["total"], r["diffusion"], r["flood"], r["delivered"]]
                for r in rows
            ],
            title="A2: diffusion depth sweep (100 nodes, k=4)",
        )
    )
    for row in rows:
        assert row["delivered"] == 1.0
    # A deeper statistical phase adds diffusion traffic, increases the share
    # of traffic carried by the privacy phase, and delays completion.
    assert rows[-1]["diffusion"] > rows[0]["diffusion"]
    assert rows[-1]["completion"] > rows[0]["completion"]
    assert (
        rows[-1]["diffusion"] / rows[-1]["total"]
        > rows[0]["diffusion"] / rows[0]["total"]
    )
