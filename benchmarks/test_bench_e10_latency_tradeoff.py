"""E10 — §II / §V-A: the latency–fairness trade-off.

Every privacy phase delays the moment a transaction reaches all miners.  The
benchmark measures the completion time (simulated time until the last node
holds the transaction) of flooding, Dandelion, standalone adaptive diffusion
and the three-phase protocol on the same overlay, and the share of that time
each phase of the combined protocol is responsible for.
"""

from repro.analysis.reporting import format_table
from repro.broadcast.dandelion import run_dandelion
from repro.broadcast.flood import run_flood
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.phases import Phase
from repro.diffusion.adaptive import run_adaptive_diffusion


def _measure(overlay_200):
    flood = run_flood(overlay_200, source=0, seed=1)
    dandelion = run_dandelion(overlay_200, source=0, seed=1)
    diffusion = run_adaptive_diffusion(overlay_200, source=0, seed=1)
    protocol = ThreePhaseBroadcast(
        overlay_200, ProtocolConfig(group_size=5, diffusion_depth=3), seed=1
    )
    combined = protocol.broadcast(source=0, payload=b"latency probe")
    return flood, dandelion, diffusion, combined


def test_e10_latency_tradeoff(benchmark, overlay_200):
    flood, dandelion, diffusion, combined = benchmark.pedantic(
        _measure, args=(overlay_200,), iterations=1, rounds=1
    )
    rows = [
        ["flood-and-prune", flood.completion_time, flood.messages],
        ["dandelion", dandelion.completion_time, dandelion.messages],
        ["adaptive diffusion", diffusion.completion_time, diffusion.messages],
        ["three-phase protocol", combined.completion_time, combined.messages_total],
    ]
    print()
    print(
        format_table(
            ["protocol", "completion time", "messages"],
            rows,
            title="E10: broadcast latency vs privacy mechanism",
        )
    )
    phase_starts = combined.timeline
    print(
        format_table(
            ["phase", "start time"],
            [
                [phase.value, phase_starts.start_of(phase)]
                for phase in (Phase.DC_NET, Phase.ADAPTIVE_DIFFUSION, Phase.FLOOD)
            ],
            title="E10: phase boundaries of the combined protocol",
        )
    )
    # Everyone delivers everywhere.
    assert flood.completion_time is not None
    assert combined.completion_time is not None
    # Privacy costs latency: the combined protocol is slower than plain
    # flooding; its phases start in order.
    assert combined.completion_time > flood.completion_time
    assert (
        phase_starts.start_of(Phase.DC_NET)
        <= phase_starts.start_of(Phase.ADAPTIVE_DIFFUSION)
        <= phase_starts.start_of(Phase.FLOOD)
    )
