"""A1 (ablation) — does the hash-based virtual-source selection matter?

Without Phase 1, adaptive diffusion starts at a neighbour of the originator,
so the diffusion tree is anchored next to the true source.  The three-phase
protocol instead anchors it at the hash-selected group member.  The ablation
measures how far the initial virtual source ends up from the true originator
in both designs — the larger and less predictable that distance, the less an
attacker learns from locating the centre of the diffusion.
"""

import networkx as nx

from repro.analysis.reporting import format_table
from repro.analysis.stats import summarize
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.transitions import select_virtual_source

BROADCASTS = 12


def _measure(overlay_200):
    protocol = ThreePhaseBroadcast(
        overlay_200, ProtocolConfig(group_size=6, diffusion_depth=3), seed=77
    )
    hash_distances = []
    neighbour_distances = []
    for index in range(BROADCASTS):
        source = (index * 13) % overlay_200.number_of_nodes()
        payload = f"ablation tx {index}".encode()
        group = protocol.directory.members_of(source)
        selected = select_virtual_source(payload, group)
        hash_distances.append(
            float(nx.shortest_path_length(overlay_200, source, selected))
        )
        # Baseline: adaptive diffusion alone starts at a direct neighbour.
        neighbour_distances.append(1.0)
    return hash_distances, neighbour_distances


def test_a1_virtual_source_selection(benchmark, overlay_200):
    hash_distances, neighbour_distances = benchmark.pedantic(
        _measure, args=(overlay_200,), iterations=1, rounds=1
    )
    hash_summary = summarize(hash_distances)
    print()
    print(
        format_table(
            ["design", "mean hops source → first virtual source", "min", "max"],
            [
                ["hash-selected group member (this paper)", hash_summary.mean,
                 hash_summary.minimum, hash_summary.maximum],
                ["originator's neighbour (plain adaptive diffusion)",
                 summarize(neighbour_distances).mean, 1.0, 1.0],
            ],
            title="A1: where Phase 2 is anchored relative to the true source",
        )
    )
    # The hash rule anchors the diffusion further from the source on average
    # than the plain-adaptive-diffusion baseline, and not deterministically
    # at distance 1.
    assert hash_summary.mean >= 1.0
    assert hash_summary.maximum > 1.0
