"""E8 — §V-B: the protocol's privacy guarantees.

Two claims are measured:

* after Phase 1, a coalition of curious group members faces a uniform
  posterior over the honest members (sender ℓ-anonymity), and
* against an outside botnet observer, the probability of identifying the
  true origin of a three-phase broadcast stays far below that of flooding
  and close to the 1/n goal of perfect obfuscation.
"""

from repro.adversary.collusion import group_collusion_posterior
from repro.analysis.reporting import format_table
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.privacy.anonymity import anonymity_set_size, is_k_anonymous
from repro.privacy.entropy import normalized_entropy
from repro.scenarios import ConditionsSpec, SeedPolicy, run_scenario_once, scenario

ADVERSARY_FRACTION = 0.2

#: The registered three-phase preset (k=6, d=3, seed 31, constant latency);
#: the flood comparison derives protocol, conditions and seed from it.
BASE = scenario("e8_privacy_bounds")


def _measure(overlay_200):
    # Part 1: collusion inside the group.
    protocol = ThreePhaseBroadcast(
        overlay_200, ProtocolConfig(group_size=6, diffusion_depth=3), seed=8
    )
    result = protocol.broadcast(source=0, payload=b"collusion probe")
    colluders = [m for m in result.group if m != 0][:2]
    posterior = group_collusion_posterior(result.group, colluders, true_sender=0)
    honest = len(result.group) - len(colluders)

    # Part 2: outside observer detection probability, protocol vs flood.
    flood = run_scenario_once(
        BASE.derive(
            protocol="flood", protocol_options={},
            conditions=ConditionsSpec(), seeds=SeedPolicy(base_seed=30),
        )
    )
    three_phase = run_scenario_once(BASE)
    return posterior, honest, flood, three_phase


def test_e8_privacy_bounds(benchmark, overlay_200):
    posterior, honest, flood, three_phase = benchmark.pedantic(
        _measure, args=(overlay_200,), iterations=1, rounds=1
    )
    n = overlay_200.number_of_nodes()
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["honest group members (ℓ)", honest],
                ["collusion anonymity-set size", anonymity_set_size(posterior)],
                ["collusion posterior entropy (normalised)", normalized_entropy(posterior)],
                ["flood detection probability", flood.detection.detection_probability],
                ["three-phase detection probability", three_phase.detection.detection_probability],
                ["perfect obfuscation target (1/n)", 1.0 / n],
            ],
            title="E8: privacy lower bound and obfuscation",
        )
    )
    # Phase-1 guarantee: the colluders cannot do better than 1/ℓ.
    assert anonymity_set_size(posterior) == honest
    assert is_k_anonymous(posterior, honest)
    assert normalized_entropy(posterior) > 0.99
    # Outside observers: the protocol is much harder to attack than flooding.
    assert (
        three_phase.detection.detection_probability
        <= flood.detection.detection_probability / 2 + 0.15
    )
