"""E7 — Fig. 5 / §IV-B: the three-phase protocol end to end.

The benchmark runs the full protocol (DC-net group → adaptive diffusion of
depth d → flood and prune) on a 200-node overlay and checks the properties
the paper claims for the construction: delivery to every node, traffic in all
three phases, phase transitions that add no messages of their own (the phase
message counts sum to the total), and a virtual source chosen from the group
by the hash rule.
"""

from repro.analysis.reporting import format_table
from repro.core.config import ProtocolConfig
from repro.core.orchestrator import ThreePhaseBroadcast
from repro.core.phases import Phase
from repro.core.transitions import verify_virtual_source

BROADCASTS = 5


def _measure(overlay_200):
    protocol = ThreePhaseBroadcast(
        overlay_200, ProtocolConfig(group_size=5, diffusion_depth=3), seed=5
    )
    results = []
    for index in range(BROADCASTS):
        payload = f"benchmark tx {index}".encode()
        results.append((payload, protocol.broadcast(source=index * 7, payload=payload)))
    return results


def test_e7_three_phase_end_to_end(benchmark, overlay_200):
    results = benchmark.pedantic(_measure, args=(overlay_200,), iterations=1, rounds=1)
    rows = []
    for payload, result in results:
        rows.append(
            [
                str(result.payload_id),
                result.delivered_fraction,
                result.messages_by_phase[Phase.DC_NET],
                result.messages_by_phase[Phase.ADAPTIVE_DIFFUSION],
                result.messages_by_phase[Phase.FLOOD],
                result.messages_total,
            ]
        )
        assert result.delivered_fraction == 1.0
        assert all(count > 0 for count in result.messages_by_phase.values())
        # Transitions add no messages: the per-phase counts partition the total.
        assert result.messages_total == sum(result.messages_by_phase.values())
        # The virtual source is a verifiable function of payload and group.
        assert verify_virtual_source(payload, result.group, result.virtual_source)
    print()
    print(
        format_table(
            ["payload", "delivered", "dc msgs", "diffusion msgs", "flood msgs", "total"],
            rows,
            title="E7: three-phase broadcast end to end (200 nodes)",
        )
    )
