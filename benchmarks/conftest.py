"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one quantitative claim (experiment ids E1-E10 and
ablations A1-A3 in DESIGN.md).  The overlays used repeatedly are built once
per session — from the *same* declarative topology specs the scenario
registry's presets carry (``repro.scenarios.presets``), so the benchmarks
and ``scripts/scenario.py`` provably run on identical overlays.  Each
benchmark prints a small table with its measurements so the numbers recorded
in EXPERIMENTS.md can be reproduced by running
``pytest benchmarks/ --benchmark-only -s``.
"""

import pytest

from repro.scenarios.presets import OVERLAY_100, OVERLAY_200, OVERLAY_1000


@pytest.fixture(scope="session")
def overlay_1000():
    """The paper's evaluation overlay: 1,000 peers, Bitcoin-like degree 8."""
    return OVERLAY_1000.build()


@pytest.fixture(scope="session")
def overlay_200():
    """A smaller overlay used by the attack experiments to keep runs fast."""
    return OVERLAY_200.build()


@pytest.fixture(scope="session")
def overlay_100():
    """A small overlay for parameter sweeps with many repetitions."""
    return OVERLAY_100.build()
