"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one quantitative claim (experiment ids E1-E10 and
ablations A1-A3 in DESIGN.md).  The overlays used repeatedly are built once
per session; each benchmark prints a small table with its measurements so the
numbers recorded in EXPERIMENTS.md can be reproduced by running
``pytest benchmarks/ --benchmark-only -s``.
"""

import pytest

from repro.network.topology import random_regular_overlay


@pytest.fixture(scope="session")
def overlay_1000():
    """The paper's evaluation overlay: 1,000 peers, Bitcoin-like degree 8."""
    return random_regular_overlay(1000, degree=8, seed=42)


@pytest.fixture(scope="session")
def overlay_200():
    """A smaller overlay used by the attack experiments to keep runs fast."""
    return random_regular_overlay(200, degree=8, seed=43)


@pytest.fixture(scope="session")
def overlay_100():
    """A small overlay for parameter sweeps with many repetitions."""
    return random_regular_overlay(100, degree=8, seed=44)
