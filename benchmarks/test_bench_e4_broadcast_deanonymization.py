"""E4 — Fig. 2 / §III-A: deanonymising a plain broadcast with a botnet.

The paper motivates the whole line of work with the observation that an
attacker adding nodes until it controls around 20 % of the network can link
a high fraction of transactions to their originator by recording arrival
times.  The benchmark sweeps the compromised fraction and measures first-spy
recall against flood-and-prune.
"""

from repro.analysis.reporting import format_table
from repro.scenarios import AdversarySpec, SeedPolicy, run_scenario_once, scenario

FRACTIONS = [0.05, 0.1, 0.2, 0.3]

#: The registered scenario this benchmark sweeps; the spec pins overlay,
#: conditions, protocol, workload and base seed — each sweep point derives
#: only the adversary fraction and the historical per-index seed.
BASE = scenario("e4_broadcast_deanonymization")


def _measure():
    rows = []
    for index, fraction in enumerate(FRACTIONS):
        result = run_scenario_once(
            BASE.derive(
                adversary=AdversarySpec(fraction=fraction),
                seeds=SeedPolicy(base_seed=BASE.seeds.base_seed + index),
            )
        )
        rows.append((fraction, result.detection.detection_probability,
                     result.detection.precision))
    return rows


def test_e4_broadcast_deanonymization(benchmark):
    rows = benchmark.pedantic(_measure, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["adversary fraction", "detection probability", "precision"],
            [[f"{fraction:.2f}", recall, precision] for fraction, recall, precision in rows],
            title="E4: first-spy attack against flood-and-prune",
        )
    )
    recalls = {fraction: recall for fraction, recall, _ in rows}
    # A 20% botnet deanonymises a substantial fraction of broadcasts.
    assert recalls[0.2] >= 0.4
    # More spies means more successful deanonymisation (monotone trend,
    # allowing small-sample noise between adjacent fractions).
    assert recalls[0.3] >= recalls[0.05]
    assert recalls[0.2] >= recalls[0.05]
