"""E6 — Fig. 4: DC-net round correctness and cost.

The figure gives the round algorithm; the benchmark exercises it end to end:
a single sender's message is recovered by every other member, collisions of
two senders are detected through the CRC framing, and the per-round message
count equals 3·k·(k-1).  The timing measurement of the round itself is the
pytest-benchmark payload.
"""

import random

from repro.analysis.reporting import format_table
from repro.crypto.pads import zero_bytes
from repro.dcnet.collision import decode_payload, encode_payload
from repro.dcnet.round import expected_messages, run_round

GROUP = list(range(8))
FRAME = 256


def _single_round():
    rng = random.Random(0)
    frame = encode_payload(b"one anonymous blockchain transaction", FRAME)
    return run_round(GROUP, {3: frame}, FRAME, rng)


def test_e6_dcnet_round(benchmark):
    result = benchmark.pedantic(_single_round, iterations=3, rounds=3)
    # Correctness: everyone but the sender recovers the payload.
    for member in GROUP:
        recovered = decode_payload(result.recovered_by(member))
        if member == 3:
            assert result.recovered_by(member) == zero_bytes(FRAME)
        else:
            assert recovered == b"one anonymous blockchain transaction"
    assert result.messages_sent == expected_messages(len(GROUP))

    # Collisions: two simultaneous senders are detected, not mis-delivered.
    rng = random.Random(1)
    collided = run_round(
        GROUP,
        {
            1: encode_payload(b"first transaction", FRAME),
            2: encode_payload(b"second transaction", FRAME),
        },
        FRAME,
        rng,
    )
    assert decode_payload(collided.recovered_by(5)) is None

    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["group size", len(GROUP)],
                ["messages per round", result.messages_sent],
                ["3k(k-1)", expected_messages(len(GROUP))],
                ["collision detected", decode_payload(collided.recovered_by(5)) is None],
            ],
            title="E6: DC-net round (Fig. 4)",
        )
    )
